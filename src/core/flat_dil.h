#ifndef XONTORANK_CORE_FLAT_DIL_H_
#define XONTORANK_CORE_FLAT_DIL_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/xonto_dil.h"
#include "xml/dewey_ref.h"

namespace xontorank {

class DilCursor;

/// The smallest float >= `score`. Block upper bounds are stored as floats
/// while the score column is double; rounding *up* keeps the bound
/// admissible — a bound that rounded below the true maximum would let the
/// pruned merge drop a genuine top-k result.
inline float ScoreUpperBoundFloat(double score) {
  float f = static_cast<float>(score);
  if (static_cast<double>(f) < score) {
    f = std::nextafterf(f, std::numeric_limits<float>::infinity());
  }
  return f;
}

/// The immutable, flat serving representation of an XOnto-DIL (the
/// perf-critical half of Table III / Fig. 11): every inverted list of every
/// keyword lives in a handful of contiguous columns instead of a
/// `std::map<std::string, DilEntry>` of per-posting heap-owned DeweyIds.
///
/// Layout (see DESIGN.md "Posting storage layout"):
///   - keyword dictionary: one sorted string arena plus offsets; lookup is
///     a binary search over slices, no node-based map on the read path;
///   - postings, columnar and global (list `l` owns posting indices
///     `[list_begin[l], list_begin[l+1])`):
///       scores[p]          the posting's NS score (full double — freezing
///                          an in-memory index is lossless),
///       shared[p]          Dewey components shared with posting p-1,
///       dewey_arena[...]   the fresh suffix components, all postings
///                          back to back in one uint32_t arena,
///       suffix_offsets[p]  where posting p's suffix starts in the arena;
///   - blocks: every kBlockPostings-th posting of a list is a restart
///     (shared forced to 0, full id in the arena), and the per-block skip
///     table skip_first_doc records each block's first document id, so
///     document-range seeks land on a block in O(log blocks) and decode at
///     most one block instead of binary-searching fat posting structs.
///
/// This is byte-for-byte the same prefix-elision scheme both on-disk
/// formats use: the XODL wire format (storage/index_store.h) stores the
/// deltas varint-compressed, which is why DecodeIndexFlat can fill these
/// columns straight from the wire, and the segment format
/// (storage/segment_file.h) stores the columns *themselves*, which is why
/// a segment opens with mmap + pointer fixup and no decode at all.
///
/// Ownership modes. A FlatDil normally owns its columns (Builder / Freeze /
/// decode). In **mapped-view mode** (FromSections, used by
/// SegmentFile::MakeView) it owns nothing: every column aliases external
/// memory — typically a memory-mapped segment file — and the caller must
/// keep that memory alive for the life of the FlatDil (IndexSnapshot holds
/// the backing mapping alongside the served FlatDil). Either way the
/// object is immutable after construction and safe to share across any
/// number of reader threads.
// xo-analyze: allow(backing-before-view) FlatDil is the view-capable root
// by design: owners pin the mapping (IndexSnapshot) or own the columns.
class FlatDil {
 public:
  /// Postings per block; restarts and skip entries are per block. 128
  /// balances seek cost (a seek decodes at most 127 postings past the
  /// block start) against restart overhead (one un-elided id per block).
  static constexpr uint32_t kBlockPostings = 128;

  /// FindList's miss value.
  static constexpr uint32_t kNoList = UINT32_MAX;

  /// The column views, in segment-file section order. For an owning
  /// FlatDil these alias its own vectors; for a mapped view they alias the
  /// external (mmap'd) memory. SegmentWriter serializes exactly these.
  ///
  /// `block_max` (one float per block, upper-rounded from the double
  /// scores) is the only optional column: segment v1 files predate it, so
  /// a v1 mapped view carries an empty span and top-k pruning falls back
  /// to the exact merge (has_block_max()).
  struct Sections {
    std::string_view keyword_arena;             ///< concatenated keywords
    std::span<const uint32_t> keyword_offsets;  ///< K+1 arena offsets
    std::span<const uint32_t> list_begin;       ///< K+1 posting bounds
    std::span<const double> scores;             ///< P
    std::span<const uint16_t> shared;           ///< P (restarts store 0)
    std::span<const uint32_t> suffix_offsets;   ///< P+1 arena offsets
    std::span<const uint32_t> dewey_arena;      ///< concatenated suffixes
    std::span<const uint32_t> skip_first_doc;   ///< one per block
    std::span<const uint32_t> skip_begin;       ///< K+1 block bounds
    std::span<const float> block_max;           ///< one per block, or empty
  };

  FlatDil() { Rebind(); }

  FlatDil(FlatDil&& other) noexcept : FlatDil() { *this = std::move(other); }
  FlatDil& operator=(FlatDil&& other) noexcept;
  FlatDil(const FlatDil&) = delete;
  FlatDil& operator=(const FlatDil&) = delete;

  /// Assembles a FlatDil from lists arriving in sorted order. Shared by
  /// XOntoDil::Freeze and the flat wire decoder so there is exactly one
  /// construction path. Defined after the class (it holds a FlatDil).
  class Builder;

  /// A non-owning FlatDil whose columns alias `sections` (mapped-view
  /// mode). The caller is responsible for (a) the sections being mutually
  /// consistent — SegmentFile::Open validates exactly that before calling
  /// — and (b) the referenced memory outliving the returned object.
  static FlatDil FromSections(const Sections& sections);

  /// This dil's column views. Valid as long as the FlatDil (owning mode)
  /// or its external backing (mapped-view mode) stays alive.
  const Sections& sections() const { return v_; }

  /// True when the columns alias external memory (FromSections).
  bool is_mapped_view() const { return mapped_; }

  // --- dictionary -------------------------------------------------------

  size_t keyword_count() const { return v_.list_begin.size() - 1; }
  size_t total_postings() const { return v_.scores.size(); }

  /// Binary search over the sorted keyword arena; kNoList if absent.
  uint32_t FindList(std::string_view keyword) const;

  std::string_view KeywordAt(uint32_t list) const {
    return v_.keyword_arena.substr(
        v_.keyword_offsets[list],
        v_.keyword_offsets[list + 1] - v_.keyword_offsets[list]);
  }

  size_t ListSize(uint32_t list) const {
    return v_.list_begin[list + 1] - v_.list_begin[list];
  }

  // --- cursors & seeks --------------------------------------------------

  /// A forward cursor over the whole list.
  DilCursor OpenCursor(uint32_t list) const;

  /// A cursor over the list's postings inside `range` (skip-table seek).
  DilCursor OpenCursor(uint32_t list, const DocRange& range) const;

  /// The half-open posting-index range of `list` whose documents fall in
  /// `range`: a binary search over the block skip table narrows the
  /// boundary to one block, which is then scanned without full decoding.
  /// Exact equivalent of SliceDocRange on the legacy representation.
  std::pair<uint32_t, uint32_t> PostingRange(uint32_t list,
                                             const DocRange& range) const;

  /// Appends every posting's document id, in posting order (one cheap
  /// sequential scan: the doc id changes only at restart postings).
  void CollectDocIds(uint32_t list, std::vector<uint32_t>* out) const;

  /// Score of a posting by global posting index (columnar: O(1), used by
  /// the ranked processor's frontier).
  double ScoreAt(uint32_t posting) const { return v_.scores[posting]; }

  /// The list's score column, indexed by list-local posting position —
  /// random access for the ranked processor without touching Dewey data.
  std::span<const double> ListScores(uint32_t list) const {
    return v_.scores.subspan(v_.list_begin[list], ListSize(list));
  }

  // --- thaw (legacy interop) --------------------------------------------

  /// Rebuilds the list's legacy posting vector, bit-identical to what was
  /// frozen (scores are stored as full doubles).
  std::vector<DilPosting> ThawPostings(uint32_t list) const;

  /// Rebuilds the whole mutable index (persistence, tests).
  XOntoDil ThawAll() const;

  // --- introspection ----------------------------------------------------

  /// Exact bytes of the flat columns: every column's size() * element size
  /// plus the keyword arena. In owning mode these are heap bytes (what
  /// bench_flat_dil reports as bytes/posting); in mapped-view mode they
  /// are file-backed mapped bytes and the heap holds essentially nothing.
  size_t MemoryBytes() const;

  /// Bytes of the Dewey component arena alone.
  size_t ArenaBytes() const {
    return v_.dewey_arena.size() * sizeof(uint32_t);
  }

  /// Skip-table blocks backing `list` (tests).
  size_t BlockCount(uint32_t list) const {
    return v_.skip_begin[list + 1] - v_.skip_begin[list];
  }

  /// Skip-table blocks across all lists (the segment header's block
  /// count).
  size_t TotalBlocks() const { return v_.skip_first_doc.size(); }

  // --- block-max pruning ------------------------------------------------

  /// True when every block carries its score upper bound (always for
  /// built/decoded dils; false for mapped views of v1 segments, which
  /// predate the column). Top-k pruning requires this; without it the
  /// query path falls back to the exact merge.
  bool has_block_max() const {
    return v_.block_max.size() == v_.skip_first_doc.size();
  }

  /// Upper bound of any score in `block` (global skip-table index). The
  /// bound is a float rounded *up* from the block's double scores, so it
  /// never under-estimates (pruning against it is admissible).
  float BlockMaxAt(uint32_t block) const { return v_.block_max[block]; }

 private:
  friend class DilCursor;

  /// Points every view in v_ at the owned vectors (owning mode only).
  void Rebind();

  /// Restores the canonical empty owning state (moved-from objects).
  void Reset();

  /// First posting index of `list` with document id >= `doc`.
  uint32_t LowerBoundDoc(uint32_t list, uint32_t doc) const;

  /// A cursor positioned at global posting index `from`, bounded by `to`
  /// (seeks to the enclosing block restart and rolls forward).
  DilCursor CursorAt(uint32_t list, uint32_t from, uint32_t to) const;

  // Owned storage. Empty in mapped-view mode; in owning mode the views in
  // v_ alias these (every read goes through v_, never through these).
  std::string keyword_arena_;
  std::vector<uint32_t> keyword_offsets_ = {0};  ///< K+1
  std::vector<uint32_t> list_begin_ = {0};       ///< K+1 posting bounds
  std::vector<double> scores_;                   ///< P
  std::vector<uint16_t> shared_;                 ///< P (restarts store 0)
  std::vector<uint32_t> suffix_offsets_ = {0};   ///< P+1 arena offsets
  std::vector<uint32_t> arena_;                  ///< concatenated suffixes
  std::vector<uint32_t> skip_first_doc_;         ///< one per block
  std::vector<uint32_t> skip_begin_ = {0};       ///< K+1 block bounds
  std::vector<float> block_max_;                 ///< one per block

  /// The read views: every accessor and cursor reads through these. They
  /// alias the owned vectors above (owning mode) or external memory
  /// (mapped-view mode).
  Sections v_;
  bool mapped_ = false;
};

// xo-analyze: allow(backing-before-view) the Builder's FlatDil is always
// in owning mode (mapped_ == false) until Freeze() hands it off.
class FlatDil::Builder {
 public:
  /// Size hints reserve the columns up front. The first two size the
  /// per-posting columns exactly; `expected_keyword_bytes` and
  /// `expected_blocks`, when nonzero, size the keyword arena and the
  /// skip table exactly too (Freeze computes all four from the source
  /// index's own counts). The Dewey arena stays heuristic — suffix
  /// lengths are data-dependent (Finish shrinks the slack).
  Builder(size_t expected_keywords, size_t expected_postings,
          size_t expected_keyword_bytes = 0, size_t expected_blocks = 0);

  /// Opens the list for `keyword`, which must sort strictly after every
  /// previously begun keyword; returns false (and ignores the call)
  /// otherwise.
  bool BeginList(std::string_view keyword);

  /// Appends one posting to the current list. `components` must be
  /// non-empty and must not sort before the list's previous posting;
  /// returns false (and ignores the call) otherwise.
  bool AddPosting(std::span<const uint32_t> components, double score);

  FlatDil Finish() &&;

 private:
  FlatDil dil_;
  std::vector<uint32_t> prev_;  ///< previous posting's full components
  bool list_open_ = false;
  bool has_prev_ = false;  ///< a posting exists in the current list
};

/// A cheap forward view over one inverted list — flat (arena-backed) or
/// legacy (span of DilPosting) — that the merge loop consumes without ever
/// materializing a DeweyId. The flat side incrementally reconstructs the
/// current id into a reused buffer (copying only the prefix-elided fresh
/// components per advance); the span side just points at the posting.
class DilCursor {
 public:
  /// An exhausted cursor.
  DilCursor() = default;

  /// A cursor over a legacy Dewey-sorted posting range.
  static DilCursor OverSpan(std::span<const DilPosting> postings) {
    DilCursor c;
    c.span_ = postings;
    c.pos_ = 0;
    c.end_ = static_cast<uint32_t>(postings.size());
    return c;
  }

  bool AtEnd() const { return pos_ >= end_; }
  size_t remaining() const { return AtEnd() ? 0 : end_ - pos_; }

  /// The current posting's Dewey id. The ref is valid until Next().
  DeweyRef dewey() const {
    if (dil_ == nullptr) return DeweyRef(span_[pos_].dewey);
    return DeweyRef(buf_.data(), depth_);
  }

  double score() const {
    return dil_ == nullptr ? span_[pos_].score : dil_->v_.scores[pos_];
  }

  /// The current posting's document id (the first Dewey component).
  uint32_t doc() const {
    return dil_ == nullptr ? span_[pos_].dewey.doc_id() : buf_[0];
  }

  void Next() {
    ++pos_;
    if (dil_ != nullptr && pos_ < end_) LoadCurrent();
  }

  /// Advances to the first posting whose document id is >= `doc` (never
  /// moves backwards; no-op when already there). Flat cursors jump through
  /// the block skip table and decode at most one block's worth of postings;
  /// span cursors binary-search the remaining range. This is what lets the
  /// conjunctive merge leapfrog over documents that cannot emit results.
  void SeekDoc(uint32_t doc) {
    if (AtEnd()) return;
    if (dil_ == nullptr) {
      auto rest = span_.subspan(pos_, end_ - pos_);
      pos_ += static_cast<uint32_t>(
          std::partition_point(rest.begin(), rest.end(),
                               [doc](const DilPosting& p) {
                                 return p.dewey.doc_id() < doc;
                               }) -
          rest.begin());
      return;
    }
    if (buf_[0] >= doc) return;
    // First block after the current one whose first document id is >= doc;
    // the target posting then lives in the block before it (or at its
    // start), so at most ~one block is decoded while rolling forward.
    uint32_t cur_block =
        skip_lo_ + (pos_ - list_start_) / FlatDil::kBlockPostings;
    std::span<const uint32_t> skip = dil_->v_.skip_first_doc;
    uint32_t next_block = static_cast<uint32_t>(
        std::lower_bound(skip.begin() + cur_block + 1,
                         skip.begin() + skip_hi_, doc) -
        skip.begin());
    if (next_block - 1 > cur_block) {
      pos_ = list_start_ +
             (next_block - 1 - skip_lo_) * FlatDil::kBlockPostings;
      if (pos_ >= end_) {
        pos_ = end_;
        return;
      }
      LoadCurrent();  // block restarts have shared == 0: buf_ is complete
    }
    while (buf_[0] < doc) {
      ++pos_;
      if (pos_ >= end_) return;
      LoadCurrent();
    }
  }

  /// Exhausts the cursor without decoding anything. Used by the pruned
  /// merge once the block bounds prove no remaining document can score.
  void SkipToEnd() { pos_ = end_; }

  // --- block-max pruning (flat cursors only) ----------------------------

  /// True when this cursor can participate in block-max pruning: flat mode
  /// over a dil carrying the block-max column. Span cursors (demand cache,
  /// legacy postings) and v1 mapped views answer false, which routes the
  /// whole query to the exact merge.
  bool has_block_max() const {
    return dil_ != nullptr && dil_->has_block_max();
  }

  /// Global skip-table index of the current posting's block. Requires
  /// !AtEnd() and flat mode.
  uint32_t block() const {
    return skip_lo_ + (pos_ - list_start_) / FlatDil::kBlockPostings;
  }

  /// Last block this cursor's range [pos_, end_) can touch. Requires
  /// !AtEnd() and flat mode.
  uint32_t range_last_block() const {
    return skip_lo_ + (end_ - 1 - list_start_) / FlatDil::kBlockPostings;
  }

  /// The score upper bound this list contributes for documents in
  /// [pivot_doc, next_doc): the max block-max over the window of blocks
  /// that can hold postings of those documents.
  struct BlockBound {
    float max_score;    ///< >= every posting score in the window
    uint32_t next_doc;  ///< first doc past the window (UINT32_MAX: none)
  };

  /// Computes the window bound at the aligned document `pivot_doc` (which
  /// must be the current document). The window runs from the current block
  /// through the last block whose first document is <= pivot_doc: postings
  /// are document-sorted, so any posting of a document < next_doc lies
  /// inside it, and the returned max_score bounds them all. Blocks past
  /// the cursor's range end over-extend the bound harmlessly (bounds may
  /// only over-estimate). Requires !AtEnd() and has_block_max().
  BlockBound BlockUpperBound(uint32_t pivot_doc) const {
    uint32_t lo = block();
    uint32_t last = range_last_block();
    std::span<const uint32_t> first = dil_->v_.skip_first_doc;
    // Last block in range whose first document id is <= pivot_doc.
    uint32_t hi = static_cast<uint32_t>(
        std::upper_bound(first.begin() + lo + 1, first.begin() + last + 1,
                         pivot_doc) -
        first.begin() - 1);
    BlockBound bound;
    bound.next_doc = hi < last ? first[hi + 1] : UINT32_MAX;
    bound.max_score = dil_->v_.block_max[lo];
    for (uint32_t b = lo + 1; b <= hi; ++b) {
      bound.max_score = std::max(bound.max_score, dil_->v_.block_max[b]);
    }
    return bound;
  }

 private:
  friend class FlatDil;

  /// Decodes posting pos_ into buf_: keeps the shared prefix (identical to
  /// the predecessor's by construction) and copies the fresh suffix.
  void LoadCurrent() {
    uint32_t off = dil_->v_.suffix_offsets[pos_];
    uint32_t fresh = dil_->v_.suffix_offsets[pos_ + 1] - off;
    uint32_t shared = dil_->v_.shared[pos_];
    depth_ = shared + fresh;
    if (buf_.size() < depth_) buf_.resize(depth_);
    for (uint32_t i = 0; i < fresh; ++i) {
      buf_[shared + i] = dil_->v_.dewey_arena[off + i];
    }
  }

  // Flat mode (dil_ != nullptr): pos_/end_ are global posting indices.
  const FlatDil* dil_ = nullptr;
  uint32_t depth_ = 0;
  std::vector<uint32_t> buf_;  ///< reconstructed components, reused
  uint32_t list_start_ = 0;    ///< the list's first posting index
  uint32_t skip_lo_ = 0;       ///< the list's block range in the skip table
  uint32_t skip_hi_ = 0;

  // Span mode: pos_/end_ index span_.
  std::span<const DilPosting> span_;

  uint32_t pos_ = 0;
  uint32_t end_ = 0;
};

/// One query keyword's inverted list for execution: either a list of a
/// FlatDil (the precomputed, frozen set) or a legacy posting span (demand
/// cache, tests). Query processors are written against this so the flat
/// and legacy worlds share one execution path.
struct DilListRef {
  const FlatDil* flat = nullptr;
  uint32_t list = 0;                     ///< valid when flat != nullptr
  std::span<const DilPosting> span{};    ///< used when flat == nullptr

  static DilListRef Over(std::span<const DilPosting> postings) {
    DilListRef ref;
    ref.span = postings;
    return ref;
  }

  /// nullptr maps to an empty list (the keyword matches nothing).
  static DilListRef Over(const DilEntry* entry) {
    DilListRef ref;
    if (entry != nullptr) ref.span = std::span<const DilPosting>(entry->postings);
    return ref;
  }

  static DilListRef OverFlat(const FlatDil& dil, uint32_t list) {
    DilListRef ref;
    ref.flat = &dil;
    ref.list = list;
    return ref;
  }

  size_t size() const {
    return flat != nullptr ? flat->ListSize(list) : span.size();
  }
  bool empty() const { return size() == 0; }

  DilCursor OpenCursor() const {
    return flat != nullptr ? flat->OpenCursor(list) : DilCursor::OverSpan(span);
  }

  DilCursor OpenCursor(const DocRange& range) const {
    return flat != nullptr ? flat->OpenCursor(list, range)
                           : DilCursor::OverSpan(SliceDocRange(span, range));
  }

  /// Postings inside `range` without opening a cursor.
  size_t CountInRange(const DocRange& range) const {
    if (flat != nullptr) {
      auto [lo, hi] = flat->PostingRange(list, range);
      return hi - lo;
    }
    return SliceDocRange(span, range).size();
  }
};

/// DilListRef overload of the document-granular partitioner; produces the
/// exact ranges PartitionListsByDocument yields for the same postings.
std::vector<DocRange> PartitionListsByDocument(
    const std::vector<DilListRef>& lists, size_t max_shards);

}  // namespace xontorank

#endif  // XONTORANK_CORE_FLAT_DIL_H_
