#ifndef XONTORANK_CORE_FLAT_DIL_H_
#define XONTORANK_CORE_FLAT_DIL_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/xonto_dil.h"
#include "xml/dewey_ref.h"

namespace xontorank {

class DilCursor;

/// The immutable, flat serving representation of an XOnto-DIL (the
/// perf-critical half of Table III / Fig. 11): every inverted list of every
/// keyword lives in a handful of contiguous columns instead of a
/// `std::map<std::string, DilEntry>` of per-posting heap-owned DeweyIds.
///
/// Layout (see DESIGN.md "Posting storage layout"):
///   - keyword dictionary: one sorted string arena plus offsets; lookup is
///     a binary search over slices, no node-based map on the read path;
///   - postings, columnar and global (list `l` owns posting indices
///     `[list_begin_[l], list_begin_[l+1])`):
///       scores_[p]          the posting's NS score (full double — freezing
///                           an in-memory index is lossless),
///       shared_[p]          Dewey components shared with posting p-1,
///       arena_[...]         the fresh suffix components, all postings
///                           back to back in one uint32_t arena,
///       suffix_offsets_[p]  where posting p's suffix starts in arena_;
///   - blocks: every kBlockPostings-th posting of a list is a restart
///     (shared forced to 0, full id in the arena), and the per-block skip
///     table skip_first_doc_ records each block's first document id, so
///     document-range seeks land on a block in O(log blocks) and decode at
///     most one block instead of binary-searching fat posting structs.
///
/// This is byte-for-byte the same prefix-elision scheme the on-disk format
/// uses (storage/index_store.h), which is why DecodeIndexFlat can fill
/// these columns straight from the wire without building an intermediate
/// XOntoDil.
///
/// A FlatDil is immutable after construction (Builder/Freeze/decode) and
/// safe to share across any number of reader threads.
class FlatDil {
 public:
  /// Postings per block; restarts and skip entries are per block. 128
  /// balances seek cost (a seek decodes at most 127 postings past the
  /// block start) against restart overhead (one un-elided id per block).
  static constexpr uint32_t kBlockPostings = 128;

  /// FindList's miss value.
  static constexpr uint32_t kNoList = UINT32_MAX;

  FlatDil() = default;

  FlatDil(FlatDil&&) = default;
  FlatDil& operator=(FlatDil&&) = default;
  FlatDil(const FlatDil&) = delete;
  FlatDil& operator=(const FlatDil&) = delete;

  /// Assembles a FlatDil from lists arriving in sorted order. Shared by
  /// XOntoDil::Freeze and the flat wire decoder so there is exactly one
  /// construction path. Defined after the class (it holds a FlatDil).
  class Builder;

  // --- dictionary -------------------------------------------------------

  size_t keyword_count() const { return list_begin_.size() - 1; }
  size_t total_postings() const { return scores_.size(); }

  /// Binary search over the sorted keyword arena; kNoList if absent.
  uint32_t FindList(std::string_view keyword) const;

  std::string_view KeywordAt(uint32_t list) const {
    return std::string_view(keyword_arena_)
        .substr(keyword_offsets_[list],
                keyword_offsets_[list + 1] - keyword_offsets_[list]);
  }

  size_t ListSize(uint32_t list) const {
    return list_begin_[list + 1] - list_begin_[list];
  }

  // --- cursors & seeks --------------------------------------------------

  /// A forward cursor over the whole list.
  DilCursor OpenCursor(uint32_t list) const;

  /// A cursor over the list's postings inside `range` (skip-table seek).
  DilCursor OpenCursor(uint32_t list, const DocRange& range) const;

  /// The half-open posting-index range of `list` whose documents fall in
  /// `range`: a binary search over the block skip table narrows the
  /// boundary to one block, which is then scanned without full decoding.
  /// Exact equivalent of SliceDocRange on the legacy representation.
  std::pair<uint32_t, uint32_t> PostingRange(uint32_t list,
                                             const DocRange& range) const;

  /// Appends every posting's document id, in posting order (one cheap
  /// sequential scan: the doc id changes only at restart postings).
  void CollectDocIds(uint32_t list, std::vector<uint32_t>* out) const;

  /// Score of a posting by global posting index (columnar: O(1), used by
  /// the ranked processor's frontier).
  double ScoreAt(uint32_t posting) const { return scores_[posting]; }

  /// The list's score column, indexed by list-local posting position —
  /// random access for the ranked processor without touching Dewey data.
  std::span<const double> ListScores(uint32_t list) const {
    return std::span<const double>(scores_.data() + list_begin_[list],
                                   ListSize(list));
  }

  // --- thaw (legacy interop) --------------------------------------------

  /// Rebuilds the list's legacy posting vector, bit-identical to what was
  /// frozen (scores are stored as full doubles).
  std::vector<DilPosting> ThawPostings(uint32_t list) const;

  /// Rebuilds the whole mutable index (persistence, tests).
  XOntoDil ThawAll() const;

  // --- introspection ----------------------------------------------------

  /// Exact heap bytes of the flat representation: every column's
  /// size() * element size plus the keyword arena. This is what
  /// bench_flat_dil reports as bytes/posting.
  size_t MemoryBytes() const;

  /// Bytes of the Dewey component arena alone.
  size_t ArenaBytes() const { return arena_.size() * sizeof(uint32_t); }

  /// Skip-table blocks backing `list` (tests).
  size_t BlockCount(uint32_t list) const {
    return skip_begin_[list + 1] - skip_begin_[list];
  }

 private:
  friend class DilCursor;

  /// First posting index of `list` with document id >= `doc`.
  uint32_t LowerBoundDoc(uint32_t list, uint32_t doc) const;

  /// A cursor positioned at global posting index `from`, bounded by `to`
  /// (seeks to the enclosing block restart and rolls forward).
  DilCursor CursorAt(uint32_t list, uint32_t from, uint32_t to) const;

  // Dictionary.
  std::string keyword_arena_;
  std::vector<uint32_t> keyword_offsets_ = {0};  ///< K+1
  std::vector<uint32_t> list_begin_ = {0};       ///< K+1 posting bounds

  // Columnar postings.
  std::vector<double> scores_;          ///< P
  std::vector<uint16_t> shared_;        ///< P (restarts store 0)
  std::vector<uint32_t> suffix_offsets_ = {0};  ///< P+1 arena offsets
  std::vector<uint32_t> arena_;         ///< concatenated fresh suffixes

  // Per-block skip table.
  std::vector<uint32_t> skip_first_doc_;     ///< one per block
  std::vector<uint32_t> skip_begin_ = {0};   ///< K+1 block bounds
};

class FlatDil::Builder {
 public:
  /// Size hints reserve the per-posting columns up front (the arena is
  /// reserved heuristically; suffixes are data-dependent).
  Builder(size_t expected_keywords, size_t expected_postings);

  /// Opens the list for `keyword`, which must sort strictly after every
  /// previously begun keyword; returns false (and ignores the call)
  /// otherwise.
  bool BeginList(std::string_view keyword);

  /// Appends one posting to the current list. `components` must be
  /// non-empty and must not sort before the list's previous posting;
  /// returns false (and ignores the call) otherwise.
  bool AddPosting(std::span<const uint32_t> components, double score);

  FlatDil Finish() &&;

 private:
  FlatDil dil_;
  std::vector<uint32_t> prev_;  ///< previous posting's full components
  bool list_open_ = false;
  bool has_prev_ = false;  ///< a posting exists in the current list
};

/// A cheap forward view over one inverted list — flat (arena-backed) or
/// legacy (span of DilPosting) — that the merge loop consumes without ever
/// materializing a DeweyId. The flat side incrementally reconstructs the
/// current id into a reused buffer (copying only the prefix-elided fresh
/// components per advance); the span side just points at the posting.
class DilCursor {
 public:
  /// An exhausted cursor.
  DilCursor() = default;

  /// A cursor over a legacy Dewey-sorted posting range.
  static DilCursor OverSpan(std::span<const DilPosting> postings) {
    DilCursor c;
    c.span_ = postings;
    c.pos_ = 0;
    c.end_ = static_cast<uint32_t>(postings.size());
    return c;
  }

  bool AtEnd() const { return pos_ >= end_; }
  size_t remaining() const { return AtEnd() ? 0 : end_ - pos_; }

  /// The current posting's Dewey id. The ref is valid until Next().
  DeweyRef dewey() const {
    if (dil_ == nullptr) return DeweyRef(span_[pos_].dewey);
    return DeweyRef(buf_.data(), depth_);
  }

  double score() const {
    return dil_ == nullptr ? span_[pos_].score : dil_->scores_[pos_];
  }

  /// The current posting's document id (the first Dewey component).
  uint32_t doc() const {
    return dil_ == nullptr ? span_[pos_].dewey.doc_id() : buf_[0];
  }

  void Next() {
    ++pos_;
    if (dil_ != nullptr && pos_ < end_) LoadCurrent();
  }

  /// Advances to the first posting whose document id is >= `doc` (never
  /// moves backwards; no-op when already there). Flat cursors jump through
  /// the block skip table and decode at most one block's worth of postings;
  /// span cursors binary-search the remaining range. This is what lets the
  /// conjunctive merge leapfrog over documents that cannot emit results.
  void SeekDoc(uint32_t doc) {
    if (AtEnd()) return;
    if (dil_ == nullptr) {
      auto rest = span_.subspan(pos_, end_ - pos_);
      pos_ += static_cast<uint32_t>(
          std::partition_point(rest.begin(), rest.end(),
                               [doc](const DilPosting& p) {
                                 return p.dewey.doc_id() < doc;
                               }) -
          rest.begin());
      return;
    }
    if (buf_[0] >= doc) return;
    // First block after the current one whose first document id is >= doc;
    // the target posting then lives in the block before it (or at its
    // start), so at most ~one block is decoded while rolling forward.
    uint32_t cur_block =
        skip_lo_ + (pos_ - list_start_) / FlatDil::kBlockPostings;
    const std::vector<uint32_t>& skip = dil_->skip_first_doc_;
    uint32_t next_block = static_cast<uint32_t>(
        std::lower_bound(skip.begin() + cur_block + 1,
                         skip.begin() + skip_hi_, doc) -
        skip.begin());
    if (next_block - 1 > cur_block) {
      pos_ = list_start_ +
             (next_block - 1 - skip_lo_) * FlatDil::kBlockPostings;
      if (pos_ >= end_) {
        pos_ = end_;
        return;
      }
      LoadCurrent();  // block restarts have shared == 0: buf_ is complete
    }
    while (buf_[0] < doc) {
      ++pos_;
      if (pos_ >= end_) return;
      LoadCurrent();
    }
  }

 private:
  friend class FlatDil;

  /// Decodes posting pos_ into buf_: keeps the shared prefix (identical to
  /// the predecessor's by construction) and copies the fresh suffix.
  void LoadCurrent() {
    uint32_t off = dil_->suffix_offsets_[pos_];
    uint32_t fresh = dil_->suffix_offsets_[pos_ + 1] - off;
    uint32_t shared = dil_->shared_[pos_];
    depth_ = shared + fresh;
    if (buf_.size() < depth_) buf_.resize(depth_);
    for (uint32_t i = 0; i < fresh; ++i) {
      buf_[shared + i] = dil_->arena_[off + i];
    }
  }

  // Flat mode (dil_ != nullptr): pos_/end_ are global posting indices.
  const FlatDil* dil_ = nullptr;
  uint32_t depth_ = 0;
  std::vector<uint32_t> buf_;  ///< reconstructed components, reused
  uint32_t list_start_ = 0;    ///< the list's first posting index
  uint32_t skip_lo_ = 0;       ///< the list's block range in the skip table
  uint32_t skip_hi_ = 0;

  // Span mode: pos_/end_ index span_.
  std::span<const DilPosting> span_;

  uint32_t pos_ = 0;
  uint32_t end_ = 0;
};

/// One query keyword's inverted list for execution: either a list of a
/// FlatDil (the precomputed, frozen set) or a legacy posting span (demand
/// cache, tests). Query processors are written against this so the flat
/// and legacy worlds share one execution path.
struct DilListRef {
  const FlatDil* flat = nullptr;
  uint32_t list = 0;                     ///< valid when flat != nullptr
  std::span<const DilPosting> span{};    ///< used when flat == nullptr

  static DilListRef Over(std::span<const DilPosting> postings) {
    DilListRef ref;
    ref.span = postings;
    return ref;
  }

  /// nullptr maps to an empty list (the keyword matches nothing).
  static DilListRef Over(const DilEntry* entry) {
    DilListRef ref;
    if (entry != nullptr) ref.span = std::span<const DilPosting>(entry->postings);
    return ref;
  }

  static DilListRef OverFlat(const FlatDil& dil, uint32_t list) {
    DilListRef ref;
    ref.flat = &dil;
    ref.list = list;
    return ref;
  }

  size_t size() const {
    return flat != nullptr ? flat->ListSize(list) : span.size();
  }
  bool empty() const { return size() == 0; }

  DilCursor OpenCursor() const {
    return flat != nullptr ? flat->OpenCursor(list) : DilCursor::OverSpan(span);
  }

  DilCursor OpenCursor(const DocRange& range) const {
    return flat != nullptr ? flat->OpenCursor(list, range)
                           : DilCursor::OverSpan(SliceDocRange(span, range));
  }

  /// Postings inside `range` without opening a cursor.
  size_t CountInRange(const DocRange& range) const {
    if (flat != nullptr) {
      auto [lo, hi] = flat->PostingRange(list, range);
      return hi - lo;
    }
    return SliceDocRange(span, range).size();
  }
};

/// DilListRef overload of the document-granular partitioner; produces the
/// exact ranges PartitionListsByDocument yields for the same postings.
std::vector<DocRange> PartitionListsByDocument(
    const std::vector<DilListRef>& lists, size_t max_shards);

}  // namespace xontorank

#endif  // XONTORANK_CORE_FLAT_DIL_H_
