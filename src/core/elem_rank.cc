#include "core/elem_rank.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace xontorank {

namespace {

/// Per-element adjacency in unit-id space.
struct Graph {
  std::vector<int32_t> parent;                 // -1 for roots
  std::vector<std::vector<uint32_t>> children;
  std::vector<std::vector<uint32_t>> hyper_out;  // reference → anchor
};

/// Attributes that define an anchor and attributes that reference one.
bool IsAnchorAttribute(const std::string& name) {
  return name == "ID" || name == "id" || name == "xml:id";
}

bool IsReferenceAttribute(const std::string& name) {
  return name == "IDREF" || name == "idref" || name == "value";
}

}  // namespace

ElemRank::ElemRank(const Corpus& corpus, ElemRankOptions options) {
  Graph graph;
  // Pass 1: number elements in preorder across the corpus (matching
  // CorpusIndex) and record containment structure + ID anchors + refs.
  struct PendingRef {
    uint32_t unit;
    std::string target;  // anchor value, possibly '#'-prefixed
    size_t doc_index;
  };
  std::vector<PendingRef> pending;
  std::vector<std::unordered_map<std::string, uint32_t>> anchors(corpus.size());

  uint32_t next_unit = 0;
  for (size_t d = 0; d < corpus.size(); ++d) {
    const XmlDocument& doc = corpus[d];
    if (doc.root() == nullptr) continue;
    // Recursive lambda: assign unit ids preorder, remember parent units.
    struct Frame {
      const XmlNode* node;
      int32_t parent_unit;
    };
    std::vector<Frame> stack{{doc.root(), -1}};
    while (!stack.empty()) {
      Frame frame = stack.back();
      stack.pop_back();
      if (!frame.node->is_element()) continue;
      uint32_t unit = next_unit++;
      graph.parent.push_back(frame.parent_unit);
      graph.children.emplace_back();
      graph.hyper_out.emplace_back();
      if (frame.parent_unit >= 0) {
        graph.children[static_cast<size_t>(frame.parent_unit)].push_back(unit);
      }
      for (const XmlAttribute& attr : frame.node->attributes()) {
        if (IsAnchorAttribute(attr.name) && !attr.value.empty()) {
          anchors[d].emplace(attr.value, unit);
        } else if (IsReferenceAttribute(attr.name) && !attr.value.empty() &&
                   (frame.node->tag() == "reference" ||
                    attr.name != "value")) {
          // `value` only counts as a reference on <reference> elements (the
          // CDA originalText pattern); IDREF counts anywhere.
          std::string target = attr.value;
          if (!target.empty() && target[0] == '#') target.erase(0, 1);
          pending.push_back({unit, std::move(target), d});
        }
      }
      // Push children in reverse so preorder numbering matches Visit().
      const auto& kids = frame.node->children();
      for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
        if ((*it)->is_element()) {
          stack.push_back({it->get(), static_cast<int32_t>(unit)});
        }
      }
    }
  }

  // Resolve hyperlink edges within each document.
  for (const PendingRef& ref : pending) {
    auto it = anchors[ref.doc_index].find(ref.target);
    if (it == anchors[ref.doc_index].end()) continue;
    if (it->second == ref.unit) continue;
    graph.hyper_out[ref.unit].push_back(it->second);
    ++hyperlink_edges_;
  }

  // Power iteration:
  // e(v) = (1-d1-d2-d3)/N
  //      + d1 · Σ_{u →hyper v} e(u)/|hyper_out(u)|
  //      + d2 · e(parent(v)) / |children(parent(v))|
  //      + d3 · Σ_{c ∈ children(v)} e(c)
  const size_t n = graph.parent.size();
  ranks_.assign(n, n == 0 ? 0.0 : 1.0 / static_cast<double>(n));
  if (n == 0) return;
  const double base = (1.0 - options.d1 - options.d2 - options.d3) /
                      static_cast<double>(n);
  std::vector<double> next(n);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    std::fill(next.begin(), next.end(), base);
    for (size_t u = 0; u < n; ++u) {
      const double e_u = ranks_[u];
      if (!graph.hyper_out[u].empty()) {
        double share =
            options.d1 * e_u / static_cast<double>(graph.hyper_out[u].size());
        for (uint32_t v : graph.hyper_out[u]) next[v] += share;
      }
      if (!graph.children[u].empty()) {
        double share =
            options.d2 * e_u / static_cast<double>(graph.children[u].size());
        for (uint32_t v : graph.children[u]) next[v] += share;
      }
      if (graph.parent[u] >= 0) {
        next[static_cast<size_t>(graph.parent[u])] += options.d3 * e_u;
      }
    }
    double delta = 0.0;
    for (size_t v = 0; v < n; ++v) delta += std::abs(next[v] - ranks_[v]);
    ranks_.swap(next);
    iterations_run_ = iter + 1;
    if (delta < options.tolerance) break;
  }

  // Normalize to max = 1 so ranks compose multiplicatively with NS.
  double max_rank = 0.0;
  for (double r : ranks_) max_rank = std::max(max_rank, r);
  if (max_rank > 0.0) {
    for (double& r : ranks_) r /= max_rank;
  }
}

}  // namespace xontorank
