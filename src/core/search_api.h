#ifndef XONTORANK_CORE_SEARCH_API_H_
#define XONTORANK_CORE_SEARCH_API_H_

#include <cstddef>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/query_processor.h"

namespace xontorank {

/// How a query is evaluated. Both strategies return *identical* results
/// (same elements, same scores, same order) — the choice only moves work
/// around, so it is an execution hint, not part of the query's meaning.
enum class QueryExecution {
  /// Exhaustive Dewey-ordered sort-merge over the XOnto-DILs (XRANK's DIL
  /// algorithm). Supports `top_k == 0` ("all results") and sharded
  /// parallel execution.
  kDil,
  /// Ranked lists with threshold-algorithm early termination (XRANK's
  /// RDIL idea). Needs a finite `top_k >= 1`; usually less work for
  /// selective queries. Always single-shard (the frontier is sequential).
  kRdil,
};

/// Human-readable execution-strategy name ("dil" / "rdil").
std::string_view QueryExecutionName(QueryExecution e);

/// Human-readable pruning-mode name ("exact" / "blockmax").
std::string_view PruningModeName(PruningMode mode);

/// Per-call knobs of the unified Search entry point.
///
/// `top_k` has ONE meaning everywhere: 0 returns all results, k >= 1
/// returns the k best. Because ranked (RDIL) evaluation is meaningless
/// without a finite k, `{top_k = 0, strategy = kRdil}` is the single
/// invalid combination; Validate names it and Search answers it with an
/// empty response instead of asserting.
struct SearchOptions {
  /// 0 = all results; k >= 1 = the k best (score desc, ties by Dewey).
  size_t top_k = 10;

  /// Execution strategy (results are identical either way).
  QueryExecution strategy = QueryExecution::kDil;

  /// Shard count for the parallel DIL merge: 1 = serial, 0 = one shard per
  /// hardware core. Ignored under kRdil. Sharding is exact — postings are
  /// partitioned at document boundaries, which the merge stack never
  /// crosses, so any shard count returns bit-identical results.
  size_t parallelism = 1;

  /// Consult (and fill) the snapshot's result cache. Cached entries live
  /// and die with their snapshot, so a hit can never serve stale data.
  bool use_cache = true;

  /// Top-k pruning of the DIL merge (see PruningMode). Like `strategy`,
  /// an execution hint: results are identical under either mode, so it is
  /// excluded from the cache key. The default prunes whenever admissible;
  /// `top_k == 0` (no threshold exists), a decay > 1, or lists without the
  /// block-max column (v1 segments, demand-cache spans) silently run
  /// exact. Ignored under kRdil.
  PruningMode pruning = PruningMode::kBlockMax;

  /// The one validity rule above; every Search entry point applies it.
  [[nodiscard]] Status Validate() const;
};

/// What one Search call did (returned alongside the results).
struct QueryStats {
  /// Postings fed into the merge (kDil) or frontier advances (kRdil).
  /// 0 when the result came from the cache or a keyword matched nothing.
  size_t postings_scanned = 0;
  /// Shards the merge actually ran with (after partitioning; a tiny corpus
  /// may yield fewer than requested). 0 on a cache hit — nothing ran.
  size_t shards = 0;
  /// True when the results were served from the snapshot's result cache.
  bool cache_hit = false;
  /// End-to-end wall time of the call, microseconds.
  double wall_micros = 0.0;

  // Work counters of the DIL merge (0 under kRdil or on a cache hit).
  /// Postings actually decoded and scored; under block-max pruning this is
  /// postings_scanned minus everything leapfrogged.
  size_t postings_scored = 0;
  /// Blocks the merge drew at least one posting from.
  size_t blocks_scored = 0;
  /// Blocks skipped wholesale because their summed score upper bounds
  /// could not beat the running k-th score.
  size_t blocks_skipped = 0;
  /// Times the k-th-score pruning threshold was set or raised.
  size_t threshold_updates = 0;
};

/// The unified Search result: the ranked results plus execution stats.
struct SearchResponse {
  std::vector<QueryResult> results;
  QueryStats stats;
};

}  // namespace xontorank

#endif  // XONTORANK_CORE_SEARCH_API_H_
