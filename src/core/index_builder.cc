#include "core/index_builder.h"

#include <algorithm>
#include <thread>

#include "common/check.h"
#include "common/timer.h"
#include "core/node_text.h"
#include "ir/tokenizer.h"

namespace xontorank {

CorpusIndex::CorpusIndex(const Corpus& corpus,
                         std::shared_ptr<const OntologyContext> context,
                         IndexBuildOptions options, XOntoDil adopted)
    : CorpusIndex(corpus, std::move(context), options,
                  adopted.keyword_count() > 0 ? adopted.Freeze() : FlatDil{}) {}

CorpusIndex::CorpusIndex(const Corpus& corpus,
                         std::shared_ptr<const OntologyContext> context,
                         IndexBuildOptions options, FlatDil adopted)
    : corpus_(&corpus),
      context_(std::move(context)),
      options_(options),
      node_index_(options.score.bm25) {
  XO_CHECK(context_ != nullptr && "an ontology context is required");
  XO_CHECK(context_->strategy() == options_.strategy &&
           "context was created for a different strategy");
  XO_CHECK(!(options_.lsm.enabled && options_.use_elem_rank) &&
           "ElemRank is corpus-normalized, so its scores are not invariant "
           "under document->segment grouping; disable it in LSM mode");
  Timer timer;
  IndexCorpus();
  if (options_.use_elem_rank) {
    elem_rank_ = std::make_unique<ElemRank>(corpus, options_.elem_rank);
  }
  if (adopted.keyword_count() > 0) {
    flat_ = std::move(adopted);
  } else {
    Precompute();
  }
  stats_.build_millis = timer.ElapsedMillis();
  stats_.documents = corpus.size();
  stats_.precomputed_keywords = flat_.keyword_count();
  stats_.total_postings = flat_.total_postings();
}

CorpusIndex::CorpusIndex(const Corpus& corpus, OntologySet systems,
                         IndexBuildOptions options)
    : CorpusIndex(corpus, OntologyContext::Create(std::move(systems), options),
                  options) {}

void CorpusIndex::IndexCorpus() {
  const auto& excluded = DefaultExcludedAttributes();
  const OntologySet& systems = context_->systems();
  // LSM mode scores each document against its own BM25 statistics (one
  // TextIndex per document) so posting scores are invariant under any
  // document → segment grouping; legacy mode keeps the corpus-global
  // collection. Unit ids are global either way.
  const bool doc_scoped = options_.lsm.enabled;
  uint32_t unit = 0;
  for (const XmlDocument& doc : *corpus_) {
    TextIndex* sink = &node_index_;
    if (doc_scoped) {
      doc_indexes_.emplace_back(options_.score.bm25);
      sink = &doc_indexes_.back();
    }
    if (doc.root() == nullptr) {
      if (doc_scoped) sink->Finalize();
      continue;
    }
    doc.root()->Visit([&](const XmlNode& node) {
      if (!node.is_element()) return;
      sink->AddUnit(unit, TextualDescription(node, excluded));
      unit_deweys_.push_back(doc.DeweyIdOf(node));
      if (node.onto_ref().has_value()) {
        size_t system = systems.FindSystem(node.onto_ref()->system);
        if (system != OntologySet::npos) {
          ConceptId c =
              systems.system(system).FindByCode(node.onto_ref()->code);
          if (c != kInvalidConcept) {
            code_units_.push_back(
                {unit, static_cast<uint32_t>(system), c});
            ++stats_.code_nodes;
          }
        }
      }
      ++unit;
    });
    if (doc_scoped) sink->Finalize();
  }
  if (!doc_scoped) node_index_.Finalize();
  stats_.indexed_nodes = unit;
}

std::vector<ScoredUnit> CorpusIndex::LookupUnits(const Keyword& keyword) const {
  if (!options_.lsm.enabled) return node_index_.Lookup(keyword);
  std::vector<ScoredUnit> units;
  for (const TextIndex& index : doc_indexes_) {
    std::vector<ScoredUnit> part = index.Lookup(keyword);
    units.insert(units.end(), part.begin(), part.end());
  }
  return units;
}

std::vector<std::string> CorpusIndex::CorpusVocabulary() const {
  if (!options_.lsm.enabled) return node_index_.Vocabulary();
  std::vector<std::string> vocab;
  for (const TextIndex& index : doc_indexes_) {
    std::vector<std::string> part = index.Vocabulary();
    vocab.insert(vocab.end(), part.begin(), part.end());
  }
  std::sort(vocab.begin(), vocab.end());
  vocab.erase(std::unique(vocab.begin(), vocab.end()), vocab.end());
  return vocab;
}

void CorpusIndex::Precompute() {
  if (options_.vocabulary_mode == IndexBuildOptions::VocabularyMode::kNone) {
    return;
  }
  // Vocabulary = corpus tokens, optionally united with ontology tokens.
  std::vector<std::string> vocab = CorpusVocabulary();
  if (options_.vocabulary_mode ==
      IndexBuildOptions::VocabularyMode::kCorpusAndOntology) {
    for (size_t s = 0; s < context_->systems().size(); ++s) {
      std::vector<std::string> onto_vocab = context_->index(s).Vocabulary();
      vocab.insert(vocab.end(), onto_vocab.begin(), onto_vocab.end());
    }
    std::sort(vocab.begin(), vocab.end());
    vocab.erase(std::unique(vocab.begin(), vocab.end()), vocab.end());
  }
  size_t num_threads = options_.num_threads == 0
                           ? std::max(1u, std::thread::hardware_concurrency())
                           : options_.num_threads;
  num_threads = std::min(num_threads, vocab.size() == 0 ? 1 : vocab.size());

  // Entries are assembled into a mutable staging dil and frozen into the
  // columnar serving form in one pass at the end.
  XOntoDil built;
  if (num_threads <= 1) {
    for (const std::string& token : vocab) {
      Keyword kw = MakeKeyword(token);
      if (kw.tokens.empty()) continue;
      built.Put(kw.Canonical(), BuildPostingsCached(kw));
    }
    flat_ = built.Freeze();
    return;
  }

  // Parallel: workers claim keywords round-robin and produce entries into
  // per-worker buffers; the (ordered) XOntoDil is assembled afterwards so
  // the result is bit-identical to the serial build.
  std::vector<std::vector<std::pair<std::string, std::vector<DilPosting>>>>
      buffers(num_threads);
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  for (size_t t = 0; t < num_threads; ++t) {
    workers.emplace_back([this, t, num_threads, &vocab, &buffers]() {
      for (size_t i = t; i < vocab.size(); i += num_threads) {
        Keyword kw = MakeKeyword(vocab[i]);
        if (kw.tokens.empty()) continue;
        buffers[t].emplace_back(kw.Canonical(), BuildPostingsCached(kw));
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  for (auto& buffer : buffers) {
    for (auto& [canonical, postings] : buffer) {
      built.Put(std::move(canonical), std::move(postings));
    }
  }
  flat_ = built.Freeze();
}

OntoScoreMap CorpusIndex::ComputeOntoScoreRow(const Keyword& keyword,
                                              size_t system) const {
  return ComputeOntoScores(context_->index(system), keyword,
                           options_.strategy, options_.score);
}

std::vector<DilPosting> CorpusIndex::BuildPostingsFromRows(
    const Keyword& keyword,
    const std::vector<OntoScoreRowCache::Row>& rows) const {
  // NS(w, v) = max(IRS(w, v), ω·OS(w, concept(v))), Eq. 5. Both components
  // are normalized to [0, 1] before combination.
  std::unordered_map<uint32_t, double> node_scores;

  // Textual component.
  for (const ScoredUnit& unit : LookupUnits(keyword)) {
    node_scores[unit.unit_id] = unit.score;
  }

  // Ontological component, through the corpus's code nodes. Each system's
  // OntoScore row is applied to that system's code nodes.
  if (options_.strategy != Strategy::kXRank) {
    const double w = options_.score.ontology_weight;
    for (size_t system = 0; system < rows.size(); ++system) {
      if (rows[system] == nullptr || rows[system]->empty()) continue;
      const OntoScoreMap& onto_scores = *rows[system];
      for (const CodeUnit& code_unit : code_units_) {
        if (code_unit.system != system) continue;
        auto it = onto_scores.find(code_unit.concept_id);
        if (it == onto_scores.end()) continue;
        double ns = w * it->second;
        auto [entry, inserted] = node_scores.emplace(code_unit.unit, ns);
        if (!inserted && ns > entry->second) entry->second = ns;
      }
    }
  }

  std::vector<DilPosting> postings;
  postings.reserve(node_scores.size());
  const double blend = options_.elem_rank_blend;
  for (const auto& [unit, score] : node_scores) {
    if (score <= 0.0) continue;
    double final_score = score;
    if (elem_rank_ != nullptr) {
      final_score *= (1.0 - blend) + blend * elem_rank_->rank(unit);
    }
    postings.push_back({unit_deweys_[unit], final_score});
  }
  std::sort(postings.begin(), postings.end(),
            [](const DilPosting& a, const DilPosting& b) {
              return a.dewey < b.dewey;
            });
  return postings;
}

std::vector<DilPosting> CorpusIndex::BuildPostings(
    const Keyword& keyword) const {
  std::vector<OntoScoreRowCache::Row> rows;
  if (options_.strategy != Strategy::kXRank) {
    for (size_t system = 0; system < context_->systems().size(); ++system) {
      rows.push_back(std::make_shared<const OntoScoreMap>(
          ComputeOntoScoreRow(keyword, system)));
    }
  }
  return BuildPostingsFromRows(keyword, rows);
}

std::vector<DilPosting> CorpusIndex::BuildPostingsCached(
    const Keyword& keyword) const {
  std::vector<OntoScoreRowCache::Row> rows;
  if (options_.strategy != Strategy::kXRank) {
    for (size_t system = 0; system < context_->systems().size(); ++system) {
      rows.push_back(context_->GetRow(system, keyword));
    }
  }
  return BuildPostingsFromRows(keyword, rows);
}

DilListRef CorpusIndex::GetListRef(const Keyword& keyword) const {
  uint32_t list = flat_.FindList(keyword.Canonical());
  if (list != FlatDil::kNoList) return DilListRef::OverFlat(flat_, list);
  return DilListRef::Over(GetEntry(keyword));
}

const DilEntry* CorpusIndex::GetEntry(const Keyword& keyword) const {
  std::string canonical = keyword.Canonical();
  {
    MutexLock lock(demand_mutex_);
    if (const DilEntry* entry = demand_.Find(canonical)) return entry;
  }
  // Thaw a precomputed flat list, or build from scratch, outside the lock
  // (the expensive part is read-only); a racing thread may produce the
  // same entry, in which case the first Put wins and the duplicate work is
  // discarded. Thawed postings are bit-identical to the frozen originals
  // (scores are stored as full doubles).
  std::vector<DilPosting> postings;
  uint32_t list = flat_.FindList(canonical);
  if (list != FlatDil::kNoList) {
    postings = flat_.ThawPostings(list);
  } else {
    postings = BuildPostingsCached(keyword);
  }
  MutexLock lock(demand_mutex_);
  if (const DilEntry* entry = demand_.Find(canonical)) return entry;
  demand_.Put(canonical, std::move(postings));
  return demand_.Find(canonical);
}

CorpusIndex::NodeSupport CorpusIndex::ComputeNodeSupport(
    const DeweyId& dewey, const Keyword& keyword) const {
  NodeSupport support;
  // unit_deweys_ is ascending (units are assigned in document order), so
  // the unit id can be recovered by binary search.
  auto it = std::lower_bound(unit_deweys_.begin(), unit_deweys_.end(), dewey);
  if (it == unit_deweys_.end() || !(*it == dewey)) return support;
  uint32_t unit = static_cast<uint32_t>(it - unit_deweys_.begin());

  for (const ScoredUnit& scored : LookupUnits(keyword)) {
    if (scored.unit_id == unit) {
      support.textual_irs = scored.score;
      break;
    }
  }
  for (const CodeUnit& code_unit : code_units_) {
    if (code_unit.unit != unit) continue;
    support.is_code_node = true;
    support.system = code_unit.system;
    support.concept_id = code_unit.concept_id;
    if (options_.strategy != Strategy::kXRank) {
      OntoScoreMap row = ComputeOntoScoreRow(keyword, code_unit.system);
      auto score_it = row.find(code_unit.concept_id);
      if (score_it != row.end()) support.onto_score = score_it->second;
    }
    break;
  }
  return support;
}

std::vector<std::string> CorpusIndex::PrecomputedVocabulary() const {
  std::vector<std::string> out;
  out.reserve(flat_.keyword_count());
  for (uint32_t l = 0; l < flat_.keyword_count(); ++l) {
    out.emplace_back(flat_.KeywordAt(l));
  }
  return out;
}

size_t CorpusIndex::TotalPostings() const {
  // GetEntry may have thawed precomputed lists into the demand cache;
  // count only genuinely demand-built lists to avoid double counting.
  size_t demand_postings = 0;
  {
    MutexLock lock(demand_mutex_);
    for (const auto& [kw, entry] : demand_.entries()) {
      if (flat_.FindList(kw) == FlatDil::kNoList) {
        demand_postings += entry.postings.size();
      }
    }
  }
  return flat_.total_postings() + demand_postings;
}

XOntoDil CorpusIndex::MaterializedCopy() const {
  XOntoDil merged = flat_.ThawAll();
  MutexLock lock(demand_mutex_);
  for (const auto& [kw, entry] : demand_.entries()) {
    // Thawed duplicates of flat lists are identical; Put replaces either
    // way, so the merge stays exact.
    merged.Put(kw, entry.postings);
  }
  return merged;
}

}  // namespace xontorank
