#include "core/onto_score_pagerank.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace xontorank {

OntoScoreMap ComputeOntoScoresPageRank(
    const OntologyIndex& index, const Keyword& keyword,
    const PageRankOntoScoreOptions& options) {
  const Ontology& onto = index.ontology();
  const size_t n = onto.concept_count();
  if (n == 0) return {};

  // Restart distribution r: IRS-weighted seeds, normalized to sum 1.
  std::vector<double> restart(n, 0.0);
  double restart_mass = 0.0;
  for (const ScoredConcept& seed : index.Match(keyword)) {
    restart[seed.concept_id] = seed.irs;
    restart_mass += seed.irs;
  }
  if (restart_mass <= 0.0) return {};
  for (double& r : restart) r /= restart_mass;

  // Undirected degree (is-a in both directions + relationships both ways),
  // matching the Graph strategy's edge set.
  std::vector<uint32_t> degree(n, 0);
  for (ConceptId c = 0; c < n; ++c) {
    degree[c] = static_cast<uint32_t>(
        onto.Parents(c).size() + onto.Children(c).size() +
        onto.OutRelationships(c).size() + onto.InRelationships(c).size());
  }

  std::vector<double> rank = restart;
  std::vector<double> next(n);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // next = (1-d)·restart + d·(flow in from neighbors, split by degree).
    for (size_t v = 0; v < n; ++v) {
      next[v] = (1.0 - options.damping) * restart[v];
    }
    for (ConceptId u = 0; u < n; ++u) {
      if (degree[u] == 0) {
        // Dangling node: return its authority to the restart distribution.
        for (size_t v = 0; v < n; ++v) {
          next[v] += options.damping * rank[u] * restart[v];
        }
        continue;
      }
      double share = options.damping * rank[u] / degree[u];
      for (ConceptId p : onto.Parents(u)) next[p] += share;
      for (ConceptId ch : onto.Children(u)) next[ch] += share;
      for (const ConceptRelationship& rel : onto.OutRelationships(u)) {
        next[rel.target] += share;
      }
      for (const ConceptRelationship& rel : onto.InRelationships(u)) {
        next[rel.source] += share;
      }
    }
    double delta = 0.0;
    for (size_t v = 0; v < n; ++v) delta += std::abs(next[v] - rank[v]);
    rank.swap(next);
    if (delta < options.tolerance) break;
  }

  double max_rank = 0.0;
  for (double r : rank) max_rank = std::max(max_rank, r);
  OntoScoreMap out;
  if (max_rank <= 0.0) return out;
  for (ConceptId c = 0; c < n; ++c) {
    double normalized = rank[c] / max_rank;
    if (normalized >= options.cutoff) out.emplace(c, normalized);
  }
  return out;
}

}  // namespace xontorank
