#ifndef XONTORANK_CORE_SIMD_KERNELS_H_
#define XONTORANK_CORE_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace xontorank {

/// Batch kernels over the FlatDil posting columns, with an instruction-set
/// implementation selected once at runtime: AVX2 where the CPU has it,
/// SSE2 otherwise (baseline on x86-64), and a portable scalar fallback
/// everywhere else. Building with -DXO_DISABLE_SIMD=ON compiles the
/// scalar fallback only — CI runs that leg so the fallback stays correct,
/// and the parity tests run identically under either build.
///
/// The kernels exist for the block-granular work the top-k pruning path
/// leaves behind: once whole blocks are skipped by upper bound, the
/// surviving blocks are decoded in batches (doc-id column fill, in-block
/// seek) instead of posting-at-a-time.

/// The instruction set the kernels dispatch to (decided once, from CPUID).
enum class SimdLevel {
  kScalar,
  kSse2,
  kAvx2,
};

/// The level this process runs the kernels at.
SimdLevel ActiveSimdLevel();

/// "scalar" / "sse2" / "avx2" — for stats lines and bench output.
std::string_view SimdLevelName(SimdLevel level);

/// Decodes the document-id column of a run of `count` postings:
/// `out[i]` = the document id of posting i, where a restart posting
/// (`shared[i] == 0`) takes the arena word at its suffix offset (the
/// first Dewey component is the doc id) and every other posting inherits
/// its predecessor's. `carry` seeds runs that do not start at a restart.
/// The columns are the FlatDil ones: `suffix_offsets` indexes `arena`
/// absolutely, so pass the column pointers offset to the run's first
/// posting and the arena base unshifted.
void FillDocIds(const uint16_t* shared, const uint32_t* suffix_offsets,
                const uint32_t* arena, size_t count, uint32_t carry,
                uint32_t* out);

/// Index of the first element >= `key` in the non-decreasing array
/// `values` (= `count` when none is). The vector paths count the
/// elements below `key` with packed unsigned compares, which for a
/// sorted array is exactly the lower bound.
size_t LowerBoundU32(const uint32_t* values, size_t count, uint32_t key);

/// Maximum over `count` floats; `count` must be >= 1. Used over
/// block-max windows and by the segment inspector's per-list summaries.
float MaxFloat(const float* values, size_t count);

}  // namespace xontorank

#endif  // XONTORANK_CORE_SIMD_KERNELS_H_
