#ifndef XONTORANK_CORE_QUERY_EXPANSION_H_
#define XONTORANK_CORE_QUERY_EXPANSION_H_

#include <memory>
#include <utility>
#include <vector>

#include "core/index_builder.h"
#include "core/query_processor.h"
#include "onto/ontology_set.h"

namespace xontorank {

/// Parameters of the query-expansion baseline.
struct QueryExpansionOptions {
  /// How many related terms each keyword may expand into (besides itself).
  size_t max_expansions_per_keyword = 5;
  /// Minimum association degree (OntoScore) for a concept's term to be
  /// admitted as an expansion.
  double min_association = 0.2;
  /// Which OntoScore strategy ranks candidate expansions.
  Strategy expansion_strategy = Strategy::kRelationships;
  /// Scoring knobs (decay/threshold/BM25), shared with the baseline index.
  ScoreOptions score;
};

/// The query-expansion comparator the paper argues against (§VIII):
/// instead of propagating ontological relevance into the index (XOntoRank),
/// expand each query keyword into a weighted disjunction of related
/// ontology terms and run plain textual search (XRANK) over the expanded
/// query. A node matching expansion term t of keyword w scores
/// IRS(t, v) · OS(w, concept(t)) — textual occurrence discounted by the
/// association degree.
///
/// Demonstrable weaknesses (exercised by the comparison bench): the result
/// set still requires every disjunct to occur *textually* somewhere, so
/// documents that only reference a concept by code remain invisible; and
/// expansion terms multiply the inverted lists to merge, inflating query
/// time with the expansion budget.
// xo-analyze: allow(backing-before-view) the comparator builds its own
// CorpusIndex, so its FlatDil owns its columns (never mapped).
class QueryExpansionEngine {
 public:
  /// `corpus` and the ontologies must outlive the engine.
  QueryExpansionEngine(const Corpus& corpus, OntologySet systems,
                       QueryExpansionOptions options = {});

  /// A weighted expansion: the term to search for and its association
  /// degree with the original keyword (1.0 for the keyword itself).
  using WeightedKeyword = std::pair<Keyword, double>;

  /// The expansion set of `keyword`: itself plus up to
  /// max_expansions_per_keyword related-concept terms, best-first.
  std::vector<WeightedKeyword> Expand(const Keyword& keyword) const;

  /// Searches with expanded keywords; result semantics are Eq. 1 over the
  /// union lists. (Named SearchExpanded, not Search: the comparator is a
  /// baseline, not part of the finalized Search(query, SearchOptions)
  /// surface, and the distinct name keeps that visible at call sites.)
  std::vector<QueryResult> SearchExpanded(const KeywordQuery& query,
                                          size_t top_k);
  std::vector<QueryResult> SearchExpanded(std::string_view query_text,
                                          size_t top_k);

  const CorpusIndex& index() const { return index_; }

 private:
  QueryExpansionOptions options_;
  CorpusIndex index_;  ///< XRANK-strategy (textual-only) index
  QueryProcessor processor_;
  /// Union lists are materialized per query; keep them alive for the merge.
  std::vector<std::unique_ptr<DilEntry>> scratch_;
};

}  // namespace xontorank

#endif  // XONTORANK_CORE_QUERY_EXPANSION_H_
