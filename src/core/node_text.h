#ifndef XONTORANK_CORE_NODE_TEXT_H_
#define XONTORANK_CORE_NODE_TEXT_H_

#include <string>
#include <unordered_set>

#include "xml/xml_node.h"

namespace xontorank {

/// Builds the textual description of an element node per §III: the
/// concatenation of its tag name, attribute names, attribute values and
/// direct text content. Values of attributes named in `excluded_attributes`
/// (code strings, OIDs, ids) are omitted, as are values that are pure
/// numeric/OID strings, since these are unlikely query keywords.
///
/// Text content covers the element's *direct* text-node children only;
/// descendant text reaches ancestors through containment-edge score
/// propagation (Eq. 2), not through textual duplication.
std::string TextualDescription(
    const XmlNode& element,
    const std::unordered_set<std::string>& excluded_attributes);

}  // namespace xontorank

#endif  // XONTORANK_CORE_NODE_TEXT_H_
