#ifndef XONTORANK_CORE_INDEX_SNAPSHOT_H_
#define XONTORANK_CORE_INDEX_SNAPSHOT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/lru_cache.h"
#include "core/index_builder.h"
#include "core/index_segment.h"
#include "core/ontology_context.h"
#include "core/query_processor.h"
#include "core/ranked_query_processor.h"
#include "core/search_api.h"
#include "xml/corpus.h"
#include "xml/xml_node.h"

namespace xontorank {

/// One immutable, self-consistent serving state of the engine: a corpus
/// slice, the CorpusIndex built over exactly that slice, and a handle on the
/// shared ontology context. Snapshots are created by the IndexWriter (or the
/// engine store's load path), published to readers through one atomic
/// shared_ptr swap, and never mutated afterwards — a reader holding a
/// snapshot can answer queries indefinitely without observing any effect of
/// concurrent writes.
///
/// Structural sharing across successive snapshots of one engine:
///   - documents (shared_ptr inside Corpus — extending the corpus copies
///     pointers, never documents),
///   - the ontology systems and their stage-1 BM25 indexes
///     (OntologyContext),
///   - the OntoScore rows of stage 2 (the context's row cache).
/// Only the corpus-dependent parts — the node text index, the unit/Dewey
/// tables and the posting lists, whose BM25 scores change with the
/// collection statistics — are derived per snapshot.
///
/// Thread-safety: all methods are const and safe to call from any number of
/// threads concurrently. Query evaluation over precomputed entries is
/// lock-free; only the on-demand entry cache (out-of-vocabulary keywords,
/// phrases) synchronizes internally.
class IndexSnapshot {
 public:
  /// Builds a snapshot over `corpus`. A non-empty `adopted` dil replaces
  /// the vocabulary precomputation (load path).
  IndexSnapshot(Corpus corpus, std::shared_ptr<const OntologyContext> context,
                IndexBuildOptions options, XOntoDil adopted = {});

  /// Same, adopting an already-flat index (the LoadIndexFlat path: the
  /// wire format decodes straight into the serving columns, no
  /// intermediate XOntoDil). When `adopted` is a mapped view whose columns
  /// alias external memory — a mmap-opened SegmentFile — pass the owner as
  /// `backing`: the snapshot pins it for its own lifetime, so the mapping
  /// cannot be unmapped while queries read through the view.
  IndexSnapshot(Corpus corpus, std::shared_ptr<const OntologyContext> context,
                IndexBuildOptions options, FlatDil adopted,
                std::shared_ptr<const void> backing = nullptr);

  /// LSM mode (DESIGN.md §15): the snapshot serves from an ordered set of
  /// immutable segments whose document ranges tile [0, corpus.size()).
  /// `options.lsm.enabled` must be set; `segments` may be empty only for
  /// an empty corpus. Search results are bit-identical to a single-segment
  /// snapshot of the same corpus (the lsm_segment_test parity property).
  IndexSnapshot(Corpus corpus, std::shared_ptr<const OntologyContext> context,
                IndexBuildOptions options,
                std::vector<std::shared_ptr<const IndexSegment>> segments);

  IndexSnapshot(const IndexSnapshot&) = delete;
  IndexSnapshot& operator=(const IndexSnapshot&) = delete;

  const Corpus& corpus() const { return corpus_; }
  size_t corpus_size() const { return corpus_.size(); }
  const XmlDocument& document(uint32_t doc_id) const {
    return corpus_[doc_id];
  }

  /// True when this snapshot serves from segments (LSM mode); index() is
  /// then unavailable — use segments() or SegmentIndexForDoc().
  bool is_lsm() const { return lsm_; }

  /// The monolithic index (legacy mode only).
  const CorpusIndex& index() const {
    XO_CHECK(index_ != nullptr &&
             "index() is unavailable on a multi-segment (LSM) snapshot; "
             "use segments() or SegmentIndexForDoc()");
    return *index_;
  }

  /// The ordered segment set (LSM mode; empty in legacy mode). Segments
  /// cover disjoint ascending document ranges tiling the corpus.
  const std::vector<std::shared_ptr<const IndexSegment>>& segments() const {
    return segments_;
  }

  /// The CorpusIndex responsible for `doc_id`: the segment's index in LSM
  /// mode, the monolithic one otherwise; nullptr for an out-of-range doc.
  /// This is what explain/node-support tooling should use — under LSM
  /// mode, per-document support values ARE the serving scores.
  const CorpusIndex* SegmentIndexForDoc(uint32_t doc_id) const;

  const std::shared_ptr<const OntologyContext>& context() const {
    return context_;
  }
  const IndexBuildOptions& options() const { return options_; }
  const IndexBuildStats& build_stats() const { return stats_; }

  /// The unified query entry point: executes `query` under `options` —
  /// exhaustive (optionally sharded-parallel) or ranked, cached or not —
  /// and returns results plus execution stats. Invalid options (the one
  /// rule: rdil needs top_k >= 1) yield an empty response, never UB.
  ///
  /// The result cache is owned by this snapshot: entries are keyed by the
  /// normalized query + top_k (execution strategy, shard count and pruning
  /// mode are hints that provably do not change results) and can never
  /// outlive or cross snapshots.
  SearchResponse Search(const KeywordQuery& query,
                        const SearchOptions& options) const;

  /// Resolves a result to its XML element; nullptr if the Dewey id does not
  /// address a node of this snapshot's corpus.
  const XmlNode* ResolveResult(const QueryResult& result) const;

  /// Serializes the result's XML fragment (e.g. Fig. 4), pretty-printed.
  std::string ResultFragmentXml(const QueryResult& result) const;

  /// Cache observability (hits/misses/evictions of this snapshot's cache).
  LruCache<std::string, std::vector<QueryResult>>::Stats cache_stats() const {
    return result_cache_.stats();
  }

 private:
  /// Collects one inverted list per query keyword. Precomputed keywords
  /// resolve to flat lists (no thaw, no lock); the rest come from the
  /// demand cache. Legacy mode only.
  std::vector<DilListRef> CollectListRefs(const KeywordQuery& query) const;

  /// LSM mode: one list vector per segment, same keyword order in each.
  std::vector<std::vector<DilListRef>> CollectSegmentLists(
      const KeywordQuery& query) const;

  /// Keep-alive for externally backed indexes (type-erased so core never
  /// depends on storage's SegmentFile). Declared FIRST: members destroy in
  /// reverse order, so the backing mapping outlives index_, whose FlatDil
  /// view may point into it. (LSM segments pin their own backing.)
  std::shared_ptr<const void> backing_;
  std::shared_ptr<const OntologyContext> context_;
  IndexBuildOptions options_;
  Corpus corpus_;
  /// Legacy mode's monolithic index (refers to corpus_; declared after
  /// it). Null in LSM mode.
  std::unique_ptr<const CorpusIndex> index_;
  /// LSM mode's ordered segment set; empty in legacy mode.
  std::vector<std::shared_ptr<const IndexSegment>> segments_;
  bool lsm_ = false;
  IndexBuildStats stats_;  ///< legacy: the index's; LSM: segment aggregate
  QueryProcessor processor_;
  RankedQueryProcessor ranked_processor_;
  /// Snapshot-scoped result cache (see Search). Mutable: caching is not
  /// observable through results, and the cache synchronizes internally.
  mutable LruCache<std::string, std::vector<QueryResult>> result_cache_;
};

}  // namespace xontorank

#endif  // XONTORANK_CORE_INDEX_SNAPSHOT_H_
