#include "core/explain.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_map>

#include "common/string_util.h"

namespace xontorank {

namespace {

/// State keys mirror core/onto_score.cc: concepts keep their id,
/// existential role restrictions ∃r.t get a tagged composite key.
using StateKey = uint64_t;
constexpr StateKey kRestrictionTag = 1ULL << 63;

StateKey ConceptKey(ConceptId c) { return c; }
StateKey RestrictionKey(RelationTypeId role, ConceptId target) {
  return kRestrictionTag | (static_cast<uint64_t>(role) << 32) | target;
}
bool IsRestriction(StateKey key) { return (key & kRestrictionTag) != 0; }
RelationTypeId RoleOfKey(StateKey key) {
  return static_cast<RelationTypeId>((key >> 32) & 0x7fffffffULL);
}
ConceptId TargetOfKey(StateKey key) {
  return static_cast<ConceptId>(key & 0xffffffffULL);
}

struct Settled {
  double score;
  StateKey predecessor;  ///< == self for seeds
};

struct QueueEntry {
  double score;
  StateKey key;
  StateKey predecessor;
  bool operator<(const QueueEntry& other) const {
    return score < other.score;
  }
};

/// Provenance-recording variant of the merged best-first expansion. The
/// scores it settles are asserted (by tests) to equal ComputeOntoScores.
std::unordered_map<StateKey, Settled> SettleWithProvenance(
    const OntologyIndex& index, const Keyword& keyword, Strategy strategy,
    const ScoreOptions& options) {
  const Ontology& onto = index.ontology();
  std::priority_queue<QueueEntry> queue;
  for (const ScoredConcept& seed : index.Match(keyword)) {
    if (seed.irs >= options.threshold) {
      StateKey key = ConceptKey(seed.concept_id);
      queue.push({seed.irs, key, key});
    }
  }
  std::unordered_map<StateKey, Settled> settled;
  while (!queue.empty()) {
    QueueEntry top = queue.top();
    queue.pop();
    if (settled.count(top.key) > 0) continue;
    settled.emplace(top.key, Settled{top.score, top.predecessor});
    auto push = [&](StateKey key, double score) {
      if (score >= options.threshold && settled.count(key) == 0) {
        queue.push({score, key, top.key});
      }
    };
    const double score = top.score;

    if (strategy == Strategy::kGraph) {
      ConceptId c = TargetOfKey(top.key);
      double next = score * options.decay;
      for (ConceptId p : onto.Parents(c)) push(ConceptKey(p), next);
      for (ConceptId ch : onto.Children(c)) push(ConceptKey(ch), next);
      for (const ConceptRelationship& rel : onto.OutRelationships(c)) {
        push(ConceptKey(rel.target), next);
      }
      for (const ConceptRelationship& rel : onto.InRelationships(c)) {
        push(ConceptKey(rel.source), next);
      }
      continue;
    }

    if (IsRestriction(top.key)) {
      RelationTypeId role = RoleOfKey(top.key);
      ConceptId target = TargetOfKey(top.key);
      push(ConceptKey(target), score * options.decay);
      for (const ConceptRelationship& rel : onto.InRelationships(target)) {
        if (rel.type == role) push(ConceptKey(rel.source), score);
      }
      continue;
    }

    ConceptId c = TargetOfKey(top.key);
    for (ConceptId ch : onto.Children(c)) push(ConceptKey(ch), score);
    for (ConceptId p : onto.Parents(c)) {
      size_t fanout = onto.Children(p).size();
      push(ConceptKey(p), score / static_cast<double>(fanout == 0 ? 1 : fanout));
    }
    if (strategy == Strategy::kRelationships) {
      for (const ConceptRelationship& rel : onto.OutRelationships(c)) {
        size_t indeg = onto.RelationInDegree(rel.target, rel.type);
        push(RestrictionKey(rel.type, rel.target),
             score / static_cast<double>(indeg == 0 ? 1 : indeg));
      }
      for (const ConceptRelationship& rel : onto.InRelationships(c)) {
        push(RestrictionKey(rel.type, c), score * options.decay);
      }
    }
  }
  return settled;
}

}  // namespace

Result<OntoExplanation> ExplainOntoScore(const OntologyIndex& index,
                                         const Keyword& keyword,
                                         Strategy strategy,
                                         const ScoreOptions& options,
                                         ConceptId target) {
  if (strategy == Strategy::kXRank) {
    return Status::InvalidArgument("the XRANK baseline has no OntoScores");
  }
  auto settled = SettleWithProvenance(index, keyword, strategy, options);
  auto target_it = settled.find(ConceptKey(target));
  if (target_it == settled.end()) {
    return Status::NotFound("concept has no OntoScore above the threshold");
  }

  // Walk predecessors back to the seed.
  std::vector<StateKey> reversed;
  StateKey cursor = ConceptKey(target);
  while (true) {
    reversed.push_back(cursor);
    const Settled& s = settled.at(cursor);
    if (s.predecessor == cursor) break;  // seed
    cursor = s.predecessor;
  }
  std::reverse(reversed.begin(), reversed.end());

  const Ontology& onto = index.ontology();
  OntoExplanation explanation;
  explanation.target = target;
  explanation.score = target_it->second.score;

  for (size_t i = 0; i < reversed.size(); ++i) {
    StateKey key = reversed[i];
    if (IsRestriction(key)) continue;  // folded into the next concept step
    OntoPathStep step;
    step.concept_id = TargetOfKey(key);
    step.score = settled.at(key).score;
    if (i == 0) {
      step.kind = OntoPathStep::Kind::kSeed;
    } else {
      StateKey prev = reversed[i - 1];
      if (IsRestriction(prev)) {
        RelationTypeId role = RoleOfKey(prev);
        ConceptId filler = TargetOfKey(prev);
        step.via = onto.RelationTypeName(role);
        if (step.concept_id == filler) {
          step.kind = OntoPathStep::Kind::kRelationForward;
        } else {
          // The restriction was entered either from the filler (reverse
          // traversal) or from a sibling source.
          StateKey before = i >= 2 ? reversed[i - 2] : prev;
          if (!IsRestriction(before) && TargetOfKey(before) == filler) {
            step.kind = OntoPathStep::Kind::kRelationReverse;
          } else {
            step.kind = OntoPathStep::Kind::kRelationForward;
            step.via += " (shared restriction)";
          }
        }
      } else if (strategy == Strategy::kGraph) {
        step.kind = OntoPathStep::Kind::kGraphEdge;
      } else {
        ConceptId prev_concept = TargetOfKey(prev);
        const auto& children = onto.Children(prev_concept);
        bool down = std::find(children.begin(), children.end(),
                              step.concept_id) != children.end();
        step.kind = down ? OntoPathStep::Kind::kIsADown
                         : OntoPathStep::Kind::kIsAUp;
      }
    }
    explanation.path.push_back(std::move(step));
  }
  return explanation;
}

std::string FormatExplanation(const Ontology& ontology,
                              const OntoExplanation& explanation) {
  std::string out;
  for (size_t i = 0; i < explanation.path.size(); ++i) {
    const OntoPathStep& step = explanation.path[i];
    if (i > 0) {
      switch (step.kind) {
        case OntoPathStep::Kind::kIsADown:
          out += " →(subclass)→ ";
          break;
        case OntoPathStep::Kind::kIsAUp:
          out += " →(superclass)→ ";
          break;
        case OntoPathStep::Kind::kRelationForward:
          out += " →(∃" + step.via + ")→ ";
          break;
        case OntoPathStep::Kind::kRelationReverse:
          out += " →(∃" + step.via + " ⁻¹)→ ";
          break;
        case OntoPathStep::Kind::kGraphEdge:
          out += " —— ";
          break;
        case OntoPathStep::Kind::kSeed:
          break;
      }
    }
    out += ontology.GetConcept(step.concept_id).preferred_term;
    out += StringPrintf(" [%.3f]", step.score);
  }
  return out;
}

Result<std::vector<KeywordEvidence>> ExplainResult(const CorpusIndex& index,
                                                   const KeywordQuery& query,
                                                   const QueryResult& result) {
  std::vector<KeywordEvidence> evidence;
  const double decay = index.options().score.decay;
  const double omega = index.options().score.ontology_weight;

  for (const Keyword& keyword : query.keywords) {
    const DilEntry* entry = index.GetEntry(keyword);
    // Find the Eq. 3 witness: posting under the result with max decayed NS.
    const DilPosting* best = nullptr;
    double best_decayed = 0.0;
    for (const DilPosting& p : entry->postings) {
      if (!result.element.IsAncestorOrSelfOf(p.dewey)) continue;
      double decayed =
          p.score * std::pow(decay, static_cast<double>(
                                        result.element.DistanceTo(p.dewey)));
      if (best == nullptr || decayed > best_decayed) {
        best = &p;
        best_decayed = decayed;
      }
    }
    if (best == nullptr) {
      return Status::NotFound("result does not cover keyword '" +
                              keyword.Canonical() + "'");
    }
    KeywordEvidence item;
    item.keyword = keyword;
    item.witness = best->dewey;
    item.node_score = best->score;
    item.decayed = best_decayed;

    CorpusIndex::NodeSupport support =
        index.ComputeNodeSupport(best->dewey, keyword);
    item.ontological =
        support.is_code_node && omega * support.onto_score > support.textual_irs;
    if (item.ontological) {
      item.system = support.system;
      auto explanation = ExplainOntoScore(
          index.ontology_index(support.system), keyword,
          index.options().strategy, index.options().score, support.concept_id);
      if (explanation.ok()) item.onto_path = std::move(explanation).value();
    }
    evidence.push_back(std::move(item));
  }
  return evidence;
}

std::string FormatEvidence(const CorpusIndex& index,
                           const std::vector<KeywordEvidence>& evidence) {
  std::string out;
  for (const KeywordEvidence& item : evidence) {
    out += StringPrintf("keyword \"%s\": witness %s  NS=%.3f (decayed %.3f)",
                        item.keyword.Canonical().c_str(),
                        item.witness.ToString().c_str(), item.node_score,
                        item.decayed);
    if (item.ontological) {
      out += "\n    via ontology: ";
      out += FormatExplanation(index.systems().system(item.system),
                               item.onto_path);
    } else {
      out += "\n    via text";
    }
    out += "\n";
  }
  return out;
}

}  // namespace xontorank
