#include "core/snippet.h"

#include <algorithm>
#include <cctype>
#include <vector>

#include "common/string_util.h"

namespace xontorank {

namespace {

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0;
}

/// Case-insensitive match of `needle` (already lower-case) at `pos` in
/// `haystack_lower`, requiring word boundaries on both sides.
bool MatchesAt(const std::string& haystack_lower, size_t pos,
               const std::string& needle) {
  if (pos + needle.size() > haystack_lower.size()) return false;
  if (haystack_lower.compare(pos, needle.size(), needle) != 0) return false;
  if (pos > 0 && IsWordChar(haystack_lower[pos - 1]) &&
      IsWordChar(needle.front())) {
    return false;
  }
  size_t end = pos + needle.size();
  if (end < haystack_lower.size() && IsWordChar(haystack_lower[end]) &&
      IsWordChar(needle.back())) {
    return false;
  }
  return true;
}

/// A keyword phrase as a displayable needle: tokens joined by single
/// spaces. Occurrences in the visible text may use any single separator
/// between tokens; we normalize the haystack's whitespace first so a plain
/// substring scan suffices.
std::string NeedleOf(const Keyword& keyword) { return keyword.Canonical(); }

}  // namespace

std::string VisibleText(const XmlNode& subtree) {
  std::string raw;
  subtree.Visit([&raw](const XmlNode& node) {
    if (node.is_text()) {
      raw += node.text();
      raw.push_back(' ');
      return;
    }
    for (const XmlAttribute& attr : node.attributes()) {
      if (attr.name == "displayName" || attr.name == "title") {
        raw += attr.value;
        raw.push_back(' ');
      }
    }
  });
  // Collapse whitespace runs to single spaces.
  std::string out;
  out.reserve(raw.size());
  bool in_space = true;
  for (char c : raw) {
    bool space = std::isspace(static_cast<unsigned char>(c)) != 0;
    if (space) {
      if (!in_space) out.push_back(' ');
    } else {
      out.push_back(c);
    }
    in_space = space;
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::string MakeSnippet(const XmlDocument& doc, const DeweyId& element,
                        const KeywordQuery& query,
                        const SnippetOptions& options) {
  const XmlNode* node = doc.Resolve(element);
  if (node == nullptr) return "";
  std::string text = VisibleText(*node);
  if (text.empty()) return "";
  std::string lower = AsciiToLower(text);

  // Collect highlight spans (begin, end), first occurrence per keyword plus
  // later ones too; overlaps merged.
  std::vector<std::pair<size_t, size_t>> spans;
  for (const Keyword& keyword : query.keywords) {
    std::string needle = NeedleOf(keyword);
    if (needle.empty()) continue;
    for (size_t pos = 0; (pos = lower.find(needle, pos)) != std::string::npos;
         ++pos) {
      if (MatchesAt(lower, pos, needle)) {
        spans.emplace_back(pos, pos + needle.size());
      }
    }
  }
  std::sort(spans.begin(), spans.end());
  std::vector<std::pair<size_t, size_t>> merged;
  for (const auto& span : spans) {
    if (!merged.empty() && span.first <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, span.second);
    } else {
      merged.push_back(span);
    }
  }

  // Window: centered on the first highlight, else the text head.
  size_t window_begin = 0;
  if (!merged.empty() && text.size() > options.max_length) {
    size_t first = merged.front().first;
    window_begin = first > options.max_length / 4 ? first - options.max_length / 4 : 0;
    window_begin = std::min(window_begin,
                            text.size() > options.max_length
                                ? text.size() - options.max_length
                                : 0);
  }
  size_t window_end = std::min(text.size(), window_begin + options.max_length);

  std::string snippet;
  if (window_begin > 0) snippet += "…";
  size_t cursor = window_begin;
  for (const auto& [begin, end] : merged) {
    if (end <= window_begin || begin >= window_end) continue;
    size_t clipped_begin = std::max(begin, window_begin);
    size_t clipped_end = std::min(end, window_end);
    snippet += text.substr(cursor, clipped_begin - cursor);
    snippet += options.open_mark;
    snippet += text.substr(clipped_begin, clipped_end - clipped_begin);
    snippet += options.close_mark;
    cursor = clipped_end;
  }
  snippet += text.substr(cursor, window_end - cursor);
  if (window_end < text.size()) snippet += "…";
  return snippet;
}

}  // namespace xontorank
