#ifndef XONTORANK_CORE_ELEM_RANK_H_
#define XONTORANK_CORE_ELEM_RANK_H_

#include <cstdint>
#include <vector>

#include "xml/corpus.h"
#include "xml/xml_node.h"

namespace xontorank {

/// ElemRank parameters (XRANK §4: a PageRank adaptation with three edge
/// classes weighted separately).
struct ElemRankOptions {
  /// Damping share of hyperlink (ID/IDREF-style) edges.
  double d1 = 0.15;
  /// Damping share of forward containment edges (parent → child), divided
  /// by the parent's child count.
  double d2 = 0.25;
  /// Damping share of reverse containment edges (child → parent),
  /// aggregated without division (a parent accrues from all children).
  double d3 = 0.10;
  /// Power-iteration bound.
  int max_iterations = 100;
  /// L1 convergence tolerance.
  double tolerance = 1e-9;
};

/// ElemRank: structural authority of XML elements (XRANK's ElemRank; §V-A
/// notes it can be incorporated into NS — the paper skipped it because its
/// CDA corpus carried no ID-IDREF edges; ours do, via the
/// `<originalText><reference value="m1"/>` → `<content ID="m1">` pattern).
///
/// Elements are numbered by preorder position across the corpus (documents
/// in vector order), matching CorpusIndex's unit numbering. Hyperlink edges
/// connect a `reference`/IDREF element to the element whose `ID` attribute
/// carries the referenced value within the same document. Ranks are
/// normalized so the maximum is 1, making them directly usable as a
/// multiplicative factor on NS.
class ElemRank {
 public:
  ElemRank(const Corpus& corpus, ElemRankOptions options = {});

  /// Rank of element unit `unit` in [0, 1]; max over the corpus is 1.
  double rank(uint32_t unit) const { return ranks_[unit]; }

  size_t size() const { return ranks_.size(); }

  /// Number of hyperlink edges discovered (for stats/tests).
  size_t hyperlink_edge_count() const { return hyperlink_edges_; }

  /// Iterations the power method actually ran.
  int iterations_run() const { return iterations_run_; }

 private:
  std::vector<double> ranks_;
  size_t hyperlink_edges_ = 0;
  int iterations_run_ = 0;
};

}  // namespace xontorank

#endif  // XONTORANK_CORE_ELEM_RANK_H_
