#include "core/query_processor.h"

#include <algorithm>
#include <cassert>

#include "common/thread_pool.h"

namespace xontorank {

namespace {

/// The result order every path in this file produces: score descending,
/// ties broken by Dewey order. Doubles as the heap comparator of the
/// pruned merge (comp = "a beats b" puts the *worst* kept result at the
/// heap top, which is exactly the running k-th threshold).
bool BetterResult(const QueryResult& a, const QueryResult& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.element < b.element;
}

/// A stack frame mirrors one component of the current Dewey path.
struct Frame {
  uint32_t component;
  std::vector<double> scores;  ///< per-keyword subtree max (Eq. 3)
  bool descendant_emitted = false;
};

class Merger {
 public:
  Merger(const std::vector<std::span<const DilPosting>>& lists,
         const ScoreOptions& options)
      : lists_(lists), options_(options), num_keywords_(lists.size()) {}

  std::vector<QueryResult> Run() {
    cursors_.assign(num_keywords_, 0);
    while (true) {
      // Pick the smallest current Dewey id across lists.
      int chosen = -1;
      for (size_t w = 0; w < num_keywords_; ++w) {
        if (cursors_[w] >= lists_[w].size()) continue;
        if (chosen < 0 ||
            lists_[w][cursors_[w]].dewey <
                lists_[chosen][cursors_[chosen]].dewey) {
          chosen = static_cast<int>(w);
        }
      }
      if (chosen < 0) break;
      const DilPosting& posting = lists_[chosen][cursors_[chosen]++];
      Consume(posting, static_cast<size_t>(chosen));
    }
    PopTo(0);
    SortAndTruncate();
    return std::move(results_);
  }

  void set_top_k(size_t top_k) { top_k_ = top_k; }

 private:
  void Consume(const DilPosting& posting, size_t keyword) {
    // Common prefix of the stack path and the posting's Dewey id.
    size_t common = 0;
    while (common < stack_.size() && common < posting.dewey.size() &&
           stack_[common].component == posting.dewey[common]) {
      ++common;
    }
    PopTo(common);
    while (stack_.size() < posting.dewey.size()) {
      Frame frame;
      frame.component = posting.dewey[stack_.size()];
      frame.scores.assign(num_keywords_, 0.0);
      stack_.push_back(std::move(frame));
    }
    Frame& top = stack_.back();
    top.scores[keyword] = std::max(top.scores[keyword], posting.score);
  }

  /// Pops frames until the stack has `depth` frames, emitting results and
  /// propagating subtree scores upward with decay (Eq. 2).
  void PopTo(size_t depth) {
    while (stack_.size() > depth) {
      Frame frame = std::move(stack_.back());
      stack_.pop_back();
      bool has_all = true;
      double total = 0.0;
      for (double s : frame.scores) {
        if (s <= 0.0) {
          has_all = false;
          break;
        }
        total += s;
      }
      bool emitted = false;
      if (has_all && !frame.descendant_emitted) {
        QueryResult result;
        result.element = CurrentDewey(frame.component);
        result.score = total;
        result.keyword_scores = frame.scores;
        results_.push_back(std::move(result));
        emitted = true;
      }
      if (!stack_.empty()) {
        Frame& parent = stack_.back();
        for (size_t w = 0; w < num_keywords_; ++w) {
          parent.scores[w] =
              std::max(parent.scores[w], frame.scores[w] * options_.decay);
        }
        parent.descendant_emitted |=
            emitted || frame.descendant_emitted;
      }
    }
  }

  /// Dewey id of the node formed by the current stack plus `last`.
  DeweyId CurrentDewey(uint32_t last) const {
    std::vector<uint32_t> comps;
    comps.reserve(stack_.size() + 1);
    for (const Frame& f : stack_) comps.push_back(f.component);
    comps.push_back(last);
    return DeweyId(std::move(comps));
  }

  void SortAndTruncate() {
    std::sort(results_.begin(), results_.end(), BetterResult);
    if (top_k_ > 0 && results_.size() > top_k_) results_.resize(top_k_);
  }

  const std::vector<std::span<const DilPosting>>& lists_;
  ScoreOptions options_;
  size_t num_keywords_;
  std::vector<size_t> cursors_;
  std::vector<Frame> stack_;
  std::vector<QueryResult> results_;
  size_t top_k_ = 0;
};

/// The flat-path twin of Merger: same emission and propagation logic (the
/// parity property tests pin the two to bit-identical output), but postings
/// arrive through DilCursors as DeweyRefs and the stack is three flat
/// reused arrays — path components, emitted flags, and a depth × keyword
/// score matrix — so pushing or popping a frame never allocates. This is
/// where the columnar layout pays off: the hot loop touches contiguous
/// memory only.
class CursorMerger {
 public:
  CursorMerger(std::vector<DilCursor>& cursors, const ScoreOptions& options)
      : cursors_(cursors), options_(options), num_keywords_(cursors.size()) {}

  std::vector<QueryResult> Run(size_t top_k, ExecuteStats* stats) {
    top_k_ = top_k;
    stats_ = stats != nullptr ? stats : &local_stats_;
    while (AlignOnSharedDocument()) {
      DrainDocument(cursors_[0].doc());
    }
    PopTo(0);
    SortAndTruncate();
    return std::move(results_);
  }

  /// Block-Max-WAND merge (DESIGN.md §12). Same output as Run, proven by
  /// the threshold algebra: once the heap holds k results, a document range
  /// whose summed per-list block maxima is <= the k-th score cannot produce
  /// a result that enters the heap — Eq. 4 sums per-keyword subtree maxima,
  /// each bounded by its list's window max (decay <= 1 keeps propagation
  /// non-increasing), and a tie on the threshold loses to the already-kept
  /// earlier-document result under the Dewey tiebreak. Callers must ensure
  /// every cursor has_block_max(), top_k >= 1, and decay <= 1.
  std::vector<QueryResult> RunPruned(size_t top_k, ExecuteStats* stats) {
    top_k_ = top_k;
    stats_ = stats != nullptr ? stats : &local_stats_;
    bounded_ = true;
    results_.reserve(top_k);
    last_counted_block_.assign(num_keywords_, UINT32_MAX);
    RunPrunedLoop();
    std::sort(results_.begin(), results_.end(), BetterResult);
    return std::move(results_);
  }

  /// Cross-segment step of the pruned merge (DESIGN.md §15): continues a
  /// *shared* global top-k carried across segments. `heap` is a
  /// BetterResult heap of at most top_k results from earlier segments; on
  /// return it holds the updated (still unsorted) heap. Pruning against the
  /// carried threshold stays exact for the same tie argument as within one
  /// segment: segments are visited in ascending document order, so a
  /// later candidate that merely ties the k-th score loses the Dewey
  /// tiebreak to the already-kept result and could never enter the heap.
  void RunPrunedShared(size_t top_k, ExecuteStats* stats,
                       std::vector<QueryResult>* heap) {
    top_k_ = top_k;
    stats_ = stats != nullptr ? stats : &local_stats_;
    bounded_ = true;
    results_ = std::move(*heap);
    results_.reserve(top_k);
    if (results_.size() == top_k_) threshold_ = results_.front().score;
    last_counted_block_.assign(num_keywords_, UINT32_MAX);
    RunPrunedLoop();
    *heap = std::move(results_);
  }

 private:
  /// The Block-Max-WAND loop shared by RunPruned and RunPrunedShared.
  void RunPrunedLoop() {
    while (AlignOnSharedDocument()) {
      uint32_t doc = cursors_[0].doc();
      if (results_.size() == top_k_) {
        double bound = 0.0;
        uint32_t next_doc = UINT32_MAX;
        for (size_t w = 0; w < num_keywords_; ++w) {
          DilCursor::BlockBound b = cursors_[w].BlockUpperBound(doc);
          bound += b.max_score;
          next_doc = std::min(next_doc, b.next_doc);
        }
        if (bound <= threshold_) {
          // Nothing in [doc, next_doc) can beat the kept k; leapfrog all
          // cursors there (next_doc == UINT32_MAX: every window runs to
          // its range end, so nothing at all remains).
          for (size_t w = 0; w < num_keywords_; ++w) {
            DilCursor& cursor = cursors_[w];
            uint32_t before = cursor.block();
            if (next_doc == UINT32_MAX) {
              cursor.SkipToEnd();
            } else {
              cursor.SeekDoc(next_doc);
            }
            uint32_t after = cursor.AtEnd() ? cursor.range_last_block() + 1
                                            : cursor.block();
            stats_->blocks_skipped += after - before;
          }
          continue;
        }
      }
      DrainDocument(doc);
      // Document boundary: flush the finished frames into the heap now so
      // the next prune decision sees the freshest threshold.
      PopTo(0);
    }
    PopTo(0);
  }

  /// Drains every posting of `doc` with the min-Dewey merge, exactly as
  /// the oblivious pass would.
  void DrainDocument(uint32_t doc) {
    while (true) {
      int chosen = -1;
      for (size_t w = 0; w < num_keywords_; ++w) {
        if (cursors_[w].AtEnd() || cursors_[w].doc() != doc) continue;
        if (chosen < 0 || cursors_[w].dewey() < cursors_[chosen].dewey()) {
          chosen = static_cast<int>(w);
        }
      }
      if (chosen < 0) break;
      DilCursor& cursor = cursors_[chosen];
      ++stats_->postings_scored;
      if (bounded_) {
        // Count each block once, the first time a posting is drawn from it.
        uint32_t block = cursor.block();
        if (block != last_counted_block_[static_cast<size_t>(chosen)]) {
          last_counted_block_[static_cast<size_t>(chosen)] = block;
          ++stats_->blocks_scored;
        }
      }
      Consume(cursor.dewey(), cursor.score(), static_cast<size_t>(chosen));
      cursor.Next();
    }
  }

  /// Routes a finished frame into the output. Exact mode appends (the
  /// final sort truncates); bounded mode keeps a k-element heap whose top
  /// is the worst kept result — the pruning threshold.
  void Emit(QueryResult result) {
    if (!bounded_) {
      results_.push_back(std::move(result));
      return;
    }
    if (results_.size() < top_k_) {
      results_.push_back(std::move(result));
      std::push_heap(results_.begin(), results_.end(), BetterResult);
      if (results_.size() == top_k_) {
        threshold_ = results_.front().score;
        ++stats_->threshold_updates;
      }
      return;
    }
    if (!BetterResult(result, results_.front())) return;
    std::pop_heap(results_.begin(), results_.end(), BetterResult);
    results_.back() = std::move(result);
    std::push_heap(results_.begin(), results_.end(), BetterResult);
    if (results_.front().score > threshold_) {
      threshold_ = results_.front().score;
      ++stats_->threshold_updates;
    }
  }
  /// Leapfrogs the cursors onto the next document present in every list,
  /// skipping whole documents through the block skip table. Exact: Eq. 1 is
  /// conjunctive and subtree scores never propagate across a document
  /// boundary, so documents missing any keyword cannot contribute to any
  /// emitted frame — consuming their postings is pure overhead. Returns
  /// false once any list is exhausted (same argument: nothing left to emit).
  bool AlignOnSharedDocument() {
    while (true) {
      uint32_t max_doc = 0;
      for (size_t w = 0; w < num_keywords_; ++w) {
        if (cursors_[w].AtEnd()) return false;
        max_doc = std::max(max_doc, cursors_[w].doc());
      }
      bool aligned = true;
      for (size_t w = 0; w < num_keywords_; ++w) {
        if (cursors_[w].doc() < max_doc) {
          cursors_[w].SeekDoc(max_doc);
          aligned = false;
        }
      }
      if (aligned) return true;
    }
  }

  void Consume(DeweyRef dewey, double score, size_t keyword) {
    size_t common = 0;
    while (common < path_.size() && common < dewey.size() &&
           path_[common] == dewey[common]) {
      ++common;
    }
    PopTo(common);
    while (path_.size() < dewey.size()) {
      path_.push_back(dewey[path_.size()]);
      emitted_.push_back(0);
      scores_.resize(scores_.size() + num_keywords_, 0.0);
    }
    double& slot = scores_[(path_.size() - 1) * num_keywords_ + keyword];
    if (score > slot) slot = score;
  }

  void PopTo(size_t depth) {
    while (path_.size() > depth) {
      size_t f = path_.size() - 1;
      double* frame = scores_.data() + f * num_keywords_;
      bool has_all = true;
      double total = 0.0;
      for (size_t w = 0; w < num_keywords_; ++w) {
        if (frame[w] <= 0.0) {
          has_all = false;
          break;
        }
        total += frame[w];
      }
      bool emit = has_all && emitted_[f] == 0;
      if (emit) {
        QueryResult result;
        result.element =
            DeweyId(std::vector<uint32_t>(path_.begin(), path_.end()));
        result.score = total;
        result.keyword_scores.assign(frame, frame + num_keywords_);
        Emit(std::move(result));
      }
      if (f > 0) {
        double* parent = frame - num_keywords_;
        for (size_t w = 0; w < num_keywords_; ++w) {
          double propagated = frame[w] * options_.decay;
          if (propagated > parent[w]) parent[w] = propagated;
        }
        if (emit || emitted_[f] != 0) emitted_[f - 1] = 1;
      }
      path_.pop_back();
      emitted_.pop_back();
      scores_.resize(scores_.size() - num_keywords_);
    }
  }

  void SortAndTruncate() {
    std::sort(results_.begin(), results_.end(), BetterResult);
    if (top_k_ > 0 && results_.size() > top_k_) results_.resize(top_k_);
  }

  std::vector<DilCursor>& cursors_;
  ScoreOptions options_;
  size_t num_keywords_;
  std::vector<uint32_t> path_;     ///< current stack's Dewey components
  std::vector<uint8_t> emitted_;   ///< per-frame descendant-emitted flag
  std::vector<double> scores_;     ///< depth × num_keywords_ score matrix
  std::vector<QueryResult> results_;
  size_t top_k_ = 0;

  // Pruned-merge state (RunPruned only).
  bool bounded_ = false;      ///< results_ is a BetterResult heap of size k
  double threshold_ = 0.0;    ///< k-th best score once the heap is full
  std::vector<uint32_t> last_counted_block_;  ///< per keyword, for stats
  ExecuteStats* stats_ = nullptr;  ///< added to, never reset; never null
  ExecuteStats local_stats_;       ///< sink when the caller passed none
};

/// Flattens per-shard top-k lists into the global (score desc, Dewey) order
/// the serial pass produces, truncated to `top_k`.
std::vector<QueryResult> MergeShardResults(
    std::vector<std::vector<QueryResult>> shard_results, size_t top_k) {
  std::vector<QueryResult> merged;
  size_t total_results = 0;
  for (const auto& shard : shard_results) total_results += shard.size();
  merged.reserve(total_results);
  for (auto& shard : shard_results) {
    for (QueryResult& r : shard) merged.push_back(std::move(r));
  }
  std::sort(merged.begin(), merged.end(), BetterResult);
  if (top_k > 0 && merged.size() > top_k) merged.resize(top_k);
  return merged;
}

}  // namespace

std::vector<QueryResult> QueryProcessor::Execute(
    const std::vector<const DilEntry*>& lists, size_t top_k) const {
  std::vector<std::span<const DilPosting>> spans;
  spans.reserve(lists.size());
  for (const DilEntry* list : lists) {
    spans.push_back(list == nullptr
                        ? std::span<const DilPosting>()
                        : std::span<const DilPosting>(list->postings));
  }
  return Execute(spans, top_k);
}

std::vector<QueryResult> QueryProcessor::Execute(
    const std::vector<std::span<const DilPosting>>& lists,
    size_t top_k) const {
  if (lists.empty()) return {};
  // A keyword with no postings can never be covered: no results (Eq. 1 is
  // conjunctive). Short-circuit to avoid a full merge.
  for (const auto& list : lists) {
    if (list.empty()) return {};
  }
  Merger merger(lists, options_);
  merger.set_top_k(top_k);
  return merger.Run();
}

std::vector<QueryResult> QueryProcessor::Execute(
    std::vector<DilCursor> cursors, size_t top_k) const {
  return Execute(std::move(cursors), top_k, PruningMode::kExact, nullptr);
}

std::vector<QueryResult> QueryProcessor::Execute(
    std::vector<DilCursor> cursors, size_t top_k, PruningMode pruning,
    ExecuteStats* stats) const {
  if (cursors.empty()) return {};
  for (const DilCursor& cursor : cursors) {
    if (cursor.AtEnd()) return {};  // conjunctive short-circuit
  }
  // Admissibility: pruning needs a threshold (top_k >= 1), per-block
  // bounds on every list, and non-increasing score propagation
  // (decay <= 1) so the window max bounds every frame a document range
  // can emit. Anything else runs the exact merge — same results.
  bool prunable = pruning == PruningMode::kBlockMax && top_k >= 1 &&
                  options_.decay <= 1.0;
  if (prunable) {
    for (const DilCursor& cursor : cursors) {
      if (!cursor.has_block_max()) {
        prunable = false;
        break;
      }
    }
  }
  CursorMerger merger(cursors, options_);
  return prunable ? merger.RunPruned(top_k, stats)
                  : merger.Run(top_k, stats);
}

std::vector<QueryResult> QueryProcessor::ExecuteSharded(
    const std::vector<std::span<const DilPosting>>& lists, size_t top_k,
    size_t num_shards, ThreadPool* pool, ExecuteStats* stats) const {
  if (stats != nullptr) *stats = ExecuteStats{};
  if (lists.empty()) return {};
  size_t total_postings = 0;
  for (const auto& list : lists) {
    if (list.empty()) return {};  // conjunctive: no results, nothing scanned
    total_postings += list.size();
  }
  if (stats != nullptr) stats->postings_scanned = total_postings;

  std::vector<DocRange> ranges;
  if (num_shards > 1 && pool != nullptr) {
    ranges = PartitionListsByDocument(lists, num_shards);
  }
  if (ranges.size() <= 1) {
    return Execute(lists, top_k);
  }
  if (stats != nullptr) stats->shards = ranges.size();

  // Each shard merges its document range into a shard-local top-k. Shards
  // are independent by construction (the stack empties between documents),
  // so any element of the global top-k is in its shard's local top-k.
  std::vector<std::vector<QueryResult>> shard_results(ranges.size());
  pool->ParallelFor(ranges.size(), [&](size_t s) {
    std::vector<std::span<const DilPosting>> slices;
    slices.reserve(lists.size());
    for (const auto& list : lists) {
      slices.push_back(SliceDocRange(list, ranges[s]));
    }
    shard_results[s] = Execute(slices, top_k);
  });

  // Final k-way merge: the same (score desc, Dewey) order the serial pass
  // uses, so the output is bit-identical to it.
  return MergeShardResults(std::move(shard_results), top_k);
}

std::vector<QueryResult> QueryProcessor::ExecuteSharded(
    const std::vector<DilListRef>& lists, size_t top_k, size_t num_shards,
    ThreadPool* pool, ExecuteStats* stats, PruningMode pruning) const {
  if (stats != nullptr) *stats = ExecuteStats{};
  if (lists.empty()) return {};
  size_t total_postings = 0;
  for (const DilListRef& list : lists) {
    if (list.empty()) return {};  // conjunctive: no results, nothing scanned
    total_postings += list.size();
  }
  if (stats != nullptr) stats->postings_scanned = total_postings;

  auto open_all = [&lists](const DocRange* range) {
    std::vector<DilCursor> cursors;
    cursors.reserve(lists.size());
    for (const DilListRef& list : lists) {
      cursors.push_back(range == nullptr ? list.OpenCursor()
                                         : list.OpenCursor(*range));
    }
    return cursors;
  };

  std::vector<DocRange> ranges;
  if (num_shards > 1 && pool != nullptr) {
    ranges = PartitionListsByDocument(lists, num_shards);
  }
  if (ranges.size() <= 1) {
    return Execute(open_all(nullptr), top_k, pruning, stats);
  }
  if (stats != nullptr) stats->shards = ranges.size();

  // Each shard prunes against its own shard-local threshold: every
  // shard-local top-k is exact for its document range, so the k-way merge
  // below is the global top-k — bit-identical to the serial pass.
  std::vector<std::vector<QueryResult>> shard_results(ranges.size());
  std::vector<ExecuteStats> shard_stats(ranges.size());
  pool->ParallelFor(ranges.size(), [&](size_t s) {
    shard_results[s] =
        Execute(open_all(&ranges[s]), top_k, pruning, &shard_stats[s]);
  });
  if (stats != nullptr) {
    for (const ExecuteStats& s : shard_stats) {
      stats->postings_scored += s.postings_scored;
      stats->blocks_scored += s.blocks_scored;
      stats->blocks_skipped += s.blocks_skipped;
      stats->threshold_updates += s.threshold_updates;
    }
  }
  return MergeShardResults(std::move(shard_results), top_k);
}

std::vector<QueryResult> QueryProcessor::MergeTopK(
    std::vector<std::vector<QueryResult>> parts, size_t top_k) {
  return MergeShardResults(std::move(parts), top_k);
}

std::vector<QueryResult> QueryProcessor::ExecuteSegments(
    const std::vector<std::vector<DilListRef>>& segment_lists, size_t top_k,
    size_t num_shards, ThreadPool* pool, ExecuteStats* stats,
    PruningMode pruning) const {
  if (stats != nullptr) *stats = ExecuteStats{};
  // Conjunctive short-circuit per segment: a segment where any keyword
  // matches nothing contributes no results and is dropped up front.
  std::vector<const std::vector<DilListRef>*> eligible;
  size_t total_postings = 0;
  for (const auto& lists : segment_lists) {
    if (lists.empty()) continue;
    bool all_nonempty = true;
    size_t postings = 0;
    for (const DilListRef& list : lists) {
      if (list.empty()) {
        all_nonempty = false;
        break;
      }
      postings += list.size();
    }
    if (!all_nonempty) continue;
    eligible.push_back(&lists);
    total_postings += postings;
  }
  if (eligible.empty()) return {};
  if (eligible.size() == 1) {
    // One live segment: this IS the single-segment path.
    return ExecuteSharded(*eligible[0], top_k, num_shards, pool, stats,
                          pruning);
  }
  if (stats != nullptr) stats->postings_scanned = total_postings;

  // Parallel plan: flatten into (segment, document range) work items —
  // segments are doc-disjoint, so the items partition the corpus at
  // document granularity exactly like single-segment sharding, and each
  // item's exact local top-k makes the final k-way merge the global top-k.
  std::vector<std::pair<size_t, DocRange>> items;
  if (num_shards > 1 && pool != nullptr) {
    size_t per_segment = std::max<size_t>(1, num_shards / eligible.size());
    for (size_t s = 0; s < eligible.size(); ++s) {
      for (const DocRange& range :
           PartitionListsByDocument(*eligible[s], per_segment)) {
        if (!range.empty()) items.emplace_back(s, range);
      }
    }
  }
  if (items.size() > 1) {
    if (stats != nullptr) stats->shards = items.size();
    std::vector<std::vector<QueryResult>> item_results(items.size());
    std::vector<ExecuteStats> item_stats(items.size());
    pool->ParallelFor(items.size(), [&](size_t i) {
      const auto& [s, range] = items[i];
      std::vector<DilCursor> cursors;
      cursors.reserve(eligible[s]->size());
      for (const DilListRef& list : *eligible[s]) {
        cursors.push_back(list.OpenCursor(range));
      }
      item_results[i] =
          Execute(std::move(cursors), top_k, pruning, &item_stats[i]);
    });
    if (stats != nullptr) {
      for (const ExecuteStats& s : item_stats) {
        stats->postings_scored += s.postings_scored;
        stats->blocks_scored += s.blocks_scored;
        stats->blocks_skipped += s.blocks_skipped;
        stats->threshold_updates += s.threshold_updates;
      }
    }
    return MergeShardResults(std::move(item_results), top_k);
  }

  // Serial plan: one global top-k heap shared across segments, visited in
  // ascending document order. Prunable segments (block-max admissible)
  // continue the Block-Max-WAND merge against the carried threshold;
  // non-prunable ones run the exact merge locally — their local top-k
  // contains every candidate that could enter the shared heap, because
  // scores never interact across (doc-disjoint) segments.
  std::vector<QueryResult> heap;  // BetterResult heap, <= top_k entries
  auto emit_shared = [&heap, top_k](std::vector<QueryResult> results) {
    for (QueryResult& r : results) {
      if (top_k == 0) {
        heap.push_back(std::move(r));
        continue;
      }
      if (heap.size() < top_k) {
        heap.push_back(std::move(r));
        std::push_heap(heap.begin(), heap.end(), BetterResult);
        continue;
      }
      if (!BetterResult(r, heap.front())) continue;
      std::pop_heap(heap.begin(), heap.end(), BetterResult);
      heap.back() = std::move(r);
      std::push_heap(heap.begin(), heap.end(), BetterResult);
    }
  };
  for (const std::vector<DilListRef>* lists : eligible) {
    std::vector<DilCursor> cursors;
    cursors.reserve(lists->size());
    for (const DilListRef& list : *lists) cursors.push_back(list.OpenCursor());
    bool prunable = pruning == PruningMode::kBlockMax && top_k >= 1 &&
                    options_.decay <= 1.0;
    if (prunable) {
      for (const DilCursor& cursor : cursors) {
        if (!cursor.has_block_max()) {
          prunable = false;
          break;
        }
      }
    }
    CursorMerger merger(cursors, options_);
    if (prunable) {
      merger.RunPrunedShared(top_k, stats, &heap);
    } else {
      emit_shared(merger.Run(top_k, stats));
    }
  }
  std::sort(heap.begin(), heap.end(), BetterResult);
  if (top_k > 0 && heap.size() > top_k) heap.resize(top_k);
  return heap;
}

}  // namespace xontorank
