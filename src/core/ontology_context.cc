#include "core/ontology_context.h"

#include "common/check.h"

namespace xontorank {

OntoScoreRowCache::Row OntoScoreRowCache::Find(
    size_t system, const std::string& canonical) const {
  MutexLock lock(mutex_);
  auto it = rows_.find(Key{system, canonical});
  return it == rows_.end() ? nullptr : it->second;
}

OntoScoreRowCache::Row OntoScoreRowCache::Insert(size_t system,
                                                 const std::string& canonical,
                                                 OntoScoreMap row) {
  auto shared = std::make_shared<const OntoScoreMap>(std::move(row));
  MutexLock lock(mutex_);
  auto [it, inserted] = rows_.emplace(Key{system, canonical}, shared);
  return it->second;
}

size_t OntoScoreRowCache::size() const {
  MutexLock lock(mutex_);
  return rows_.size();
}

std::shared_ptr<const OntologyContext> OntologyContext::Create(
    OntologySet systems, const IndexBuildOptions& options) {
  XO_CHECK(!systems.empty() && "at least one ontological system is required");
  // xo-lint: allow(new-delete) — private constructor, make_shared cannot.
  auto context = std::shared_ptr<OntologyContext>(new OntologyContext());
  context->systems_ = std::move(systems);
  context->strategy_ = options.strategy;
  context->score_ = options.score;
  context->cache_rows_ = options.cache_onto_score_rows;
  for (size_t s = 0; s < context->systems_.size(); ++s) {
    context->indexes_.push_back(std::make_unique<OntologyIndex>(
        context->systems_.system(s), options.score.bm25));
  }
  return context;
}

OntoScoreRowCache::Row OntologyContext::GetRow(size_t system,
                                               const Keyword& keyword) const {
  std::string canonical = keyword.Canonical();
  if (cache_rows_) {
    if (OntoScoreRowCache::Row row = row_cache_.Find(system, canonical)) {
      return row;
    }
  }
  // Compute outside any lock; a racing thread may duplicate the work, in
  // which case the first insert wins.
  OntoScoreMap row =
      ComputeOntoScores(*indexes_[system], keyword, strategy_, score_);
  if (!cache_rows_) {
    return std::make_shared<const OntoScoreMap>(std::move(row));
  }
  return row_cache_.Insert(system, canonical, std::move(row));
}

}  // namespace xontorank
