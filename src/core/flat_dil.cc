#include "core/flat_dil.h"

#include <algorithm>

#include "common/check.h"
#include "core/simd_kernels.h"

namespace xontorank {

// --- ownership ------------------------------------------------------------

void FlatDil::Rebind() {
  v_.keyword_arena = keyword_arena_;
  v_.keyword_offsets = keyword_offsets_;
  v_.list_begin = list_begin_;
  v_.scores = scores_;
  v_.shared = shared_;
  v_.suffix_offsets = suffix_offsets_;
  v_.dewey_arena = arena_;
  v_.skip_first_doc = skip_first_doc_;
  v_.skip_begin = skip_begin_;
  v_.block_max = block_max_;
}

void FlatDil::Reset() {
  keyword_arena_.clear();
  keyword_offsets_ = {0};
  list_begin_ = {0};
  scores_.clear();
  shared_.clear();
  suffix_offsets_ = {0};
  arena_.clear();
  skip_first_doc_.clear();
  skip_begin_ = {0};
  block_max_.clear();
  mapped_ = false;
  Rebind();
}

FlatDil& FlatDil::operator=(FlatDil&& other) noexcept {
  if (this == &other) return *this;
  keyword_arena_ = std::move(other.keyword_arena_);
  keyword_offsets_ = std::move(other.keyword_offsets_);
  list_begin_ = std::move(other.list_begin_);
  scores_ = std::move(other.scores_);
  shared_ = std::move(other.shared_);
  suffix_offsets_ = std::move(other.suffix_offsets_);
  arena_ = std::move(other.arena_);
  skip_first_doc_ = std::move(other.skip_first_doc_);
  skip_begin_ = std::move(other.skip_begin_);
  block_max_ = std::move(other.block_max_);
  mapped_ = other.mapped_;
  if (mapped_) {
    // The views point at external memory, which is unaffected by the move.
    v_ = other.v_;
  } else {
    // keyword_arena_ may have been SSO-stored, so the moved string's bytes
    // can live at a different address: re-point every view at the (now
    // ours) owned storage rather than copying other's views.
    Rebind();
  }
  other.Reset();
  return *this;
}

FlatDil FlatDil::FromSections(const Sections& sections) {
  FlatDil dil;
  dil.mapped_ = true;
  dil.v_ = sections;
  return dil;
}

// --- Builder --------------------------------------------------------------

FlatDil::Builder::Builder(size_t expected_keywords, size_t expected_postings,
                          size_t expected_keyword_bytes,
                          size_t expected_blocks) {
  // list_begin_/skip_begin_ are rebuilt from scratch: BeginList pushes each
  // list's start, Finish the final end bound (so an empty build still ends
  // up with the canonical {0}).
  dil_.list_begin_.clear();
  dil_.skip_begin_.clear();
  dil_.keyword_offsets_.reserve(expected_keywords + 1);
  dil_.list_begin_.reserve(expected_keywords + 1);
  dil_.skip_begin_.reserve(expected_keywords + 1);
  dil_.keyword_arena_.reserve(expected_keyword_bytes);
  dil_.scores_.reserve(expected_postings);
  dil_.shared_.reserve(expected_postings);
  dil_.suffix_offsets_.reserve(expected_postings + 1);
  // Prefix elision leaves ~1-2 fresh components per posting plus one full
  // id per block restart; 2 per posting is a safe single-allocation guess
  // (Finish shrinks whatever is unused).
  dil_.arena_.reserve(expected_postings * 2);
  size_t reserve_blocks = expected_blocks != 0
                              ? expected_blocks
                              : expected_postings / kBlockPostings +
                                    expected_keywords;
  dil_.skip_first_doc_.reserve(reserve_blocks);
  dil_.block_max_.reserve(reserve_blocks);
}

bool FlatDil::Builder::BeginList(std::string_view keyword) {
  size_t built = dil_.keyword_offsets_.size() - 1;
  if (built > 0) {
    std::string_view last =
        std::string_view(dil_.keyword_arena_)
            .substr(dil_.keyword_offsets_[built - 1],
                    dil_.keyword_offsets_[built] -
                        dil_.keyword_offsets_[built - 1]);
    if (!(last < keyword)) return false;  // must be strictly ascending
  }
  dil_.list_begin_.push_back(static_cast<uint32_t>(dil_.scores_.size()));
  dil_.skip_begin_.push_back(
      static_cast<uint32_t>(dil_.skip_first_doc_.size()));
  dil_.keyword_arena_.append(keyword);
  dil_.keyword_offsets_.push_back(
      static_cast<uint32_t>(dil_.keyword_arena_.size()));
  list_open_ = true;
  has_prev_ = false;
  return true;
}

bool FlatDil::Builder::AddPosting(std::span<const uint32_t> components,
                                  double score) {
  if (!list_open_ || components.empty() || components.size() > UINT16_MAX) {
    return false;
  }
  DeweyRef cur(components.data(), components.size());
  uint32_t shared = 0;
  if (has_prev_) {
    DeweyRef prev(prev_.data(), prev_.size());
    if (CompareDewey(cur, prev) < 0) return false;  // non-decreasing only
    shared = static_cast<uint32_t>(CommonPrefixLength(prev, cur));
  }
  uint32_t in_list = static_cast<uint32_t>(dil_.scores_.size()) -
                     dil_.list_begin_.back();
  if (in_list % kBlockPostings == 0) {
    // Block restart: store the full id so a skip-table seek can start
    // decoding here, and record the block's first document id and open
    // its score upper bound.
    shared = 0;
    dil_.skip_first_doc_.push_back(components[0]);
    dil_.block_max_.push_back(ScoreUpperBoundFloat(score));
  } else {
    float ub = ScoreUpperBoundFloat(score);
    if (ub > dil_.block_max_.back()) dil_.block_max_.back() = ub;
  }
  dil_.shared_.push_back(static_cast<uint16_t>(shared));
  dil_.arena_.insert(dil_.arena_.end(), components.begin() + shared,
                     components.end());
  dil_.suffix_offsets_.push_back(static_cast<uint32_t>(dil_.arena_.size()));
  dil_.scores_.push_back(score);
  prev_.assign(components.begin(), components.end());
  has_prev_ = true;
  return true;
}

FlatDil FlatDil::Builder::Finish() && {
  dil_.list_begin_.push_back(static_cast<uint32_t>(dil_.scores_.size()));
  dil_.skip_begin_.push_back(
      static_cast<uint32_t>(dil_.skip_first_doc_.size()));
  // Drop reservation slack so MemoryBytes()-style accounting (and the
  // bench's heap counters) reflect the data, not the sizing heuristics —
  // DecodeIndexFlat in particular can only bound the posting count from
  // the blob size, leaving every per-posting column over-reserved.
  dil_.scores_.shrink_to_fit();
  dil_.shared_.shrink_to_fit();
  dil_.suffix_offsets_.shrink_to_fit();
  dil_.arena_.shrink_to_fit();
  dil_.skip_first_doc_.shrink_to_fit();
  dil_.block_max_.shrink_to_fit();
  dil_.Rebind();
  return std::move(dil_);
}

// --- dictionary -----------------------------------------------------------

uint32_t FlatDil::FindList(std::string_view keyword) const {
  uint32_t lo = 0;
  uint32_t hi = static_cast<uint32_t>(keyword_count());
  while (lo < hi) {
    uint32_t mid = lo + (hi - lo) / 2;
    if (KeywordAt(mid) < keyword) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < keyword_count() && KeywordAt(lo) == keyword) return lo;
  return kNoList;
}

// --- cursors & seeks ------------------------------------------------------

DilCursor FlatDil::OpenCursor(uint32_t list) const {
  return CursorAt(list, v_.list_begin[list], v_.list_begin[list + 1]);
}

DilCursor FlatDil::OpenCursor(uint32_t list, const DocRange& range) const {
  auto [lo, hi] = PostingRange(list, range);
  return CursorAt(list, lo, hi);
}

DilCursor FlatDil::CursorAt(uint32_t list, uint32_t from, uint32_t to) const {
  DilCursor c;
  if (from >= to) return c;  // default cursor is exhausted
  c.dil_ = this;
  c.end_ = to;
  c.list_start_ = v_.list_begin[list];
  c.skip_lo_ = v_.skip_begin[list];
  c.skip_hi_ = v_.skip_begin[list + 1];
  // Seek: start decoding at `from`'s block restart (where shared == 0) and
  // roll forward so the shared-prefix buffer is complete at `from`.
  uint32_t list_start = c.list_start_;
  c.pos_ = list_start +
           (from - list_start) / kBlockPostings * kBlockPostings;
  c.LoadCurrent();
  while (c.pos_ < from) {
    ++c.pos_;
    c.LoadCurrent();
  }
  return c;
}

uint32_t FlatDil::LowerBoundDoc(uint32_t list, uint32_t doc) const {
  uint32_t list_start = v_.list_begin[list];
  uint32_t list_end = v_.list_begin[list + 1];
  if (list_start == list_end) return list_start;
  uint32_t skip_lo = v_.skip_begin[list];
  uint32_t skip_hi = v_.skip_begin[list + 1];
  // First block whose first document id is >= doc. Any earlier match must
  // then live in the block before it.
  auto skip_first = v_.skip_first_doc.begin();
  uint32_t block = static_cast<uint32_t>(
      std::lower_bound(skip_first + skip_lo, skip_first + skip_hi, doc) -
      skip_first);
  if (block == skip_lo) return list_start;
  uint32_t begin = list_start + (block - 1 - skip_lo) * kBlockPostings;
  uint32_t end = std::min(begin + kBlockPostings, list_end);
  // In-block seek without full decode: batch-fill the block's doc-id
  // column (it changes only at restart postings, where it is the suffix's
  // first word), then lower-bound it — both SIMD-dispatched.
  uint32_t docs[kBlockPostings];
  FillDocIds(v_.shared.data() + begin, v_.suffix_offsets.data() + begin,
             v_.dewey_arena.data(), end - begin,
             v_.skip_first_doc[block - 1], docs);
  return begin + static_cast<uint32_t>(
                     LowerBoundU32(docs, end - begin, doc));
}

std::pair<uint32_t, uint32_t> FlatDil::PostingRange(
    uint32_t list, const DocRange& range) const {
  uint32_t lo = LowerBoundDoc(list, range.begin_doc);
  uint32_t hi = range.empty() ? lo : LowerBoundDoc(list, range.end_doc);
  return {lo, std::max(lo, hi)};
}

void FlatDil::CollectDocIds(uint32_t list,
                            std::vector<uint32_t>* out) const {
  uint32_t begin = v_.list_begin[list];
  uint32_t end = v_.list_begin[list + 1];
  size_t old_size = out->size();
  out->resize(old_size + (end - begin));
  // Lists start at a restart (shared == 0), so the carry seed is unused.
  FillDocIds(v_.shared.data() + begin, v_.suffix_offsets.data() + begin,
             v_.dewey_arena.data(), end - begin, 0,
             out->data() + old_size);
}

// --- thaw -----------------------------------------------------------------

std::vector<DilPosting> FlatDil::ThawPostings(uint32_t list) const {
  std::vector<DilPosting> postings;
  postings.reserve(ListSize(list));
  for (DilCursor c = OpenCursor(list); !c.AtEnd(); c.Next()) {
    postings.push_back(DilPosting{c.dewey().ToDeweyId(), c.score()});
  }
  return postings;
}

XOntoDil FlatDil::ThawAll() const {
  XOntoDil dil;
  for (uint32_t l = 0; l < keyword_count(); ++l) {
    dil.Put(std::string(KeywordAt(l)), ThawPostings(l));
  }
  return dil;
}

// --- introspection --------------------------------------------------------

size_t FlatDil::MemoryBytes() const {
  return v_.keyword_arena.size() +
         v_.keyword_offsets.size() * sizeof(uint32_t) +
         v_.list_begin.size() * sizeof(uint32_t) +
         v_.scores.size() * sizeof(double) +
         v_.shared.size() * sizeof(uint16_t) +
         v_.suffix_offsets.size() * sizeof(uint32_t) +
         v_.dewey_arena.size() * sizeof(uint32_t) +
         v_.skip_first_doc.size() * sizeof(uint32_t) +
         v_.skip_begin.size() * sizeof(uint32_t) +
         v_.block_max.size() * sizeof(float);
}

// --- conversions ----------------------------------------------------------

FlatDil XOntoDil::Freeze() const {
  // Exact sizes fall out of the source index's own bookkeeping, so every
  // column can be reserved once and verified after the build.
  size_t total_postings = TotalPostings();
  size_t keyword_bytes = 0;
  size_t blocks = 0;
  for (const auto& [keyword, entry] : entries_) {
    keyword_bytes += keyword.size();
    blocks += (entry.postings.size() + FlatDil::kBlockPostings - 1) /
              FlatDil::kBlockPostings;
  }
  FlatDil::Builder builder(entries_.size(), total_postings, keyword_bytes,
                           blocks);
  for (const auto& [keyword, entry] : entries_) {
    XO_CHECK(builder.BeginList(keyword));  // map iterates sorted
    for (const DilPosting& posting : entry.postings) {
      // Lists are Dewey-sorted by Put's invariant.
      XO_CHECK(builder.AddPosting(posting.dewey.components(), posting.score));
    }
  }
  FlatDil dil = std::move(builder).Finish();
  XO_CHECK_EQ(dil.keyword_count(), entries_.size());
  XO_CHECK_EQ(dil.total_postings(), total_postings);
  XO_CHECK_EQ(dil.sections().keyword_arena.size(), keyword_bytes);
  XO_CHECK_EQ(dil.TotalBlocks(), blocks);
  XO_CHECK_EQ(dil.sections().block_max.size(), blocks);
  return dil;
}

// --- partitioning ---------------------------------------------------------

std::vector<DocRange> PartitionListsByDocument(
    const std::vector<DilListRef>& lists, size_t max_shards) {
  uint32_t min_doc = UINT32_MAX;
  uint32_t max_doc = 0;
  size_t total = 0;
  // Flat lists surface doc ids through one sequential scan each; reuse that
  // scan for both the bounds and the histogram below. Span lists are read
  // in place.
  std::vector<std::vector<uint32_t>> flat_docs(lists.size());
  for (size_t i = 0; i < lists.size(); ++i) {
    const DilListRef& list = lists[i];
    if (list.empty()) continue;
    total += list.size();
    if (list.flat != nullptr) {
      list.flat->CollectDocIds(list.list, &flat_docs[i]);
      min_doc = std::min(min_doc, flat_docs[i].front());
      max_doc = std::max(max_doc, flat_docs[i].back());
    } else {
      min_doc = std::min(min_doc, list.span.front().dewey.doc_id());
      max_doc = std::max(max_doc, list.span.back().dewey.doc_id());
    }
  }
  if (total == 0) return {DocRange{0, 0}};
  if (max_shards <= 1 || min_doc == max_doc) {
    return {DocRange{min_doc, max_doc + 1}};
  }

  std::vector<size_t> doc_postings(max_doc - min_doc + 1, 0);
  for (size_t i = 0; i < lists.size(); ++i) {
    if (lists[i].flat != nullptr) {
      for (uint32_t doc : flat_docs[i]) ++doc_postings[doc - min_doc];
    } else {
      for (const DilPosting& p : lists[i].span) {
        ++doc_postings[p.dewey.doc_id() - min_doc];
      }
    }
  }

  return PartitionDocHistogram(min_doc, max_doc, total, doc_postings,
                               max_shards);
}

}  // namespace xontorank
