#include "core/simd_kernels.h"

#include <algorithm>

#include "common/check.h"

// The x86 paths are compiled whenever the target is x86-64 and SIMD is
// not disabled; which one runs is decided at startup from CPUID. SSE2 is
// part of the x86-64 baseline, so it needs no target attribute; the AVX2
// functions carry one so the rest of the translation unit stays baseline
// (the binary must start on machines without AVX2 and only *call* the
// AVX2 kernels after the CPUID check).
#if defined(__x86_64__) && !defined(XO_DISABLE_SIMD)
#define XO_SIMD_X86 1
#include <immintrin.h>
#endif

// The reinterpret_casts in the x86 paths are the intrinsic-mandated
// register load/store spelling over in-memory arrays the caller already
// validated — not wire-byte decoding — hence their per-line
// untrusted-decode suppressions.

namespace xontorank {

namespace {

// --- scalar fallbacks (the reference semantics) ---------------------------

void FillDocIdsScalar(const uint16_t* shared, const uint32_t* suffix_offsets,
                      const uint32_t* arena, size_t count, uint32_t carry,
                      uint32_t* out) {
  for (size_t i = 0; i < count; ++i) {
    if (shared[i] == 0) carry = arena[suffix_offsets[i]];
    out[i] = carry;
  }
}

size_t LowerBoundU32Scalar(const uint32_t* values, size_t count,
                           uint32_t key) {
  return static_cast<size_t>(
      std::lower_bound(values, values + count, key) - values);
}

float MaxFloatScalar(const float* values, size_t count) {
  float max = values[0];
  for (size_t i = 1; i < count; ++i) {
    if (values[i] > max) max = values[i];
  }
  return max;
}

#ifdef XO_SIMD_X86

// --- SSE2 -----------------------------------------------------------------

// Restarts are one posting in kBlockPostings (128), so almost every chunk
// of `shared` is all-nonzero and the doc id is a plain broadcast of the
// running carry; only chunks containing a restart drop to the scalar
// loop. The same shape (wide test, rare slow path) is what makes this
// vectorizable at all — the carry itself is a serial dependence.
void FillDocIdsSse2(const uint16_t* shared, const uint32_t* suffix_offsets,
                    const uint32_t* arena, size_t count, uint32_t carry,
                    uint32_t* out) {
  const __m128i zero = _mm_setzero_si128();
  size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    __m128i sh = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(shared + i));  // xo-lint: allow(untrusted-decode)
    __m128i restart = _mm_cmpeq_epi16(sh, zero);
    if (_mm_movemask_epi8(restart) == 0) {
      __m128i v = _mm_set1_epi32(static_cast<int>(carry));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), v);  // xo-lint: allow(untrusted-decode)
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 4), v);  // xo-lint: allow(untrusted-decode)
    } else {
      for (size_t j = i; j < i + 8; ++j) {
        if (shared[j] == 0) carry = arena[suffix_offsets[j]];
        out[j] = carry;
      }
    }
  }
  FillDocIdsScalar(shared + i, suffix_offsets + i, arena, count - i, carry,
                   out + i);
}

// Packed compares are signed; flipping the sign bit maps the unsigned
// order onto the signed one.
size_t LowerBoundU32Sse2(const uint32_t* values, size_t count,
                         uint32_t key) {
  const __m128i flip = _mm_set1_epi32(static_cast<int>(0x80000000u));
  const __m128i k =
      _mm_xor_si128(_mm_set1_epi32(static_cast<int>(key)), flip);
  size_t below = 0;
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    __m128i v = _mm_xor_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(values + i)),  // xo-lint: allow(untrusted-decode)
        flip);
    // Lanes with values[i] < key; the array is non-decreasing, so the
    // total count of such lanes is the lower-bound index.
    int mask = _mm_movemask_ps(_mm_castsi128_ps(_mm_cmplt_epi32(v, k)));
    below += static_cast<size_t>(__builtin_popcount(mask));
  }
  for (; i < count; ++i) below += values[i] < key ? 1 : 0;
  return below;
}

float MaxFloatSse2(const float* values, size_t count) {
  if (count < 4) return MaxFloatScalar(values, count);
  __m128 max = _mm_loadu_ps(values);
  size_t i = 4;
  for (; i + 4 <= count; i += 4) {
    max = _mm_max_ps(max, _mm_loadu_ps(values + i));
  }
  if (i < count) max = _mm_max_ps(max, _mm_loadu_ps(values + count - 4));
  max = _mm_max_ps(max, _mm_shuffle_ps(max, max, _MM_SHUFFLE(1, 0, 3, 2)));
  max = _mm_max_ps(max, _mm_shuffle_ps(max, max, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtss_f32(max);
}

// --- AVX2 -----------------------------------------------------------------

__attribute__((target("avx2"))) void FillDocIdsAvx2(
    const uint16_t* shared, const uint32_t* suffix_offsets,
    const uint32_t* arena, size_t count, uint32_t carry, uint32_t* out) {
  const __m256i zero = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 16 <= count; i += 16) {
    __m256i sh = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(shared + i));  // xo-lint: allow(untrusted-decode)
    __m256i restart = _mm256_cmpeq_epi16(sh, zero);
    if (_mm256_movemask_epi8(restart) == 0) {
      __m256i v = _mm256_set1_epi32(static_cast<int>(carry));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), v);  // xo-lint: allow(untrusted-decode)
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 8), v);  // xo-lint: allow(untrusted-decode)
    } else {
      for (size_t j = i; j < i + 16; ++j) {
        if (shared[j] == 0) carry = arena[suffix_offsets[j]];
        out[j] = carry;
      }
    }
  }
  FillDocIdsScalar(shared + i, suffix_offsets + i, arena, count - i, carry,
                   out + i);
}

__attribute__((target("avx2"))) size_t LowerBoundU32Avx2(
    const uint32_t* values, size_t count, uint32_t key) {
  const __m256i flip = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  const __m256i k =
      _mm256_xor_si256(_mm256_set1_epi32(static_cast<int>(key)), flip);
  size_t below = 0;
  size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    __m256i v = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i)),  // xo-lint: allow(untrusted-decode)
        flip);
    int mask = _mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpgt_epi32(k, v)));
    below += static_cast<size_t>(__builtin_popcount(mask));
  }
  for (; i < count; ++i) below += values[i] < key ? 1 : 0;
  return below;
}

__attribute__((target("avx2"))) float MaxFloatAvx2(const float* values,
                                                   size_t count) {
  if (count < 8) return MaxFloatSse2(values, count);
  __m256 max = _mm256_loadu_ps(values);
  size_t i = 8;
  for (; i + 8 <= count; i += 8) {
    max = _mm256_max_ps(max, _mm256_loadu_ps(values + i));
  }
  if (i < count) {
    max = _mm256_max_ps(max, _mm256_loadu_ps(values + count - 8));
  }
  __m128 m = _mm_max_ps(_mm256_castps256_ps128(max),
                        _mm256_extractf128_ps(max, 1));
  m = _mm_max_ps(m, _mm_shuffle_ps(m, m, _MM_SHUFFLE(1, 0, 3, 2)));
  m = _mm_max_ps(m, _mm_shuffle_ps(m, m, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtss_f32(m);
}

#endif  // XO_SIMD_X86

SimdLevel DetectSimdLevel() {
#ifdef XO_SIMD_X86
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
  return SimdLevel::kSse2;  // x86-64 baseline
#else
  return SimdLevel::kScalar;
#endif
}

}  // namespace

SimdLevel ActiveSimdLevel() {
  static const SimdLevel level = DetectSimdLevel();
  return level;
}

std::string_view SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse2:
      return "sse2";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "?";
}

void FillDocIds(const uint16_t* shared, const uint32_t* suffix_offsets,
                const uint32_t* arena, size_t count, uint32_t carry,
                uint32_t* out) {
#ifdef XO_SIMD_X86
  switch (ActiveSimdLevel()) {
    case SimdLevel::kAvx2:
      FillDocIdsAvx2(shared, suffix_offsets, arena, count, carry, out);
      return;
    case SimdLevel::kSse2:
      FillDocIdsSse2(shared, suffix_offsets, arena, count, carry, out);
      return;
    case SimdLevel::kScalar:
      break;
  }
#endif
  FillDocIdsScalar(shared, suffix_offsets, arena, count, carry, out);
}

size_t LowerBoundU32(const uint32_t* values, size_t count, uint32_t key) {
#ifdef XO_SIMD_X86
  switch (ActiveSimdLevel()) {
    case SimdLevel::kAvx2:
      return LowerBoundU32Avx2(values, count, key);
    case SimdLevel::kSse2:
      return LowerBoundU32Sse2(values, count, key);
    case SimdLevel::kScalar:
      break;
  }
#endif
  return LowerBoundU32Scalar(values, count, key);
}

float MaxFloat(const float* values, size_t count) {
  XO_CHECK(count > 0);
#ifdef XO_SIMD_X86
  switch (ActiveSimdLevel()) {
    case SimdLevel::kAvx2:
      return MaxFloatAvx2(values, count);
    case SimdLevel::kSse2:
      return MaxFloatSse2(values, count);
    case SimdLevel::kScalar:
      break;
  }
#endif
  return MaxFloatScalar(values, count);
}

}  // namespace xontorank
