#include "core/xontorank.h"

namespace xontorank {

XOntoRank::XOntoRank(Corpus corpus, OntologySet systems,
                     IndexBuildOptions options)
    : writer_(std::move(corpus), std::move(systems), options) {}

SearchResponse XOntoRank::Search(const KeywordQuery& query,
                                 const SearchOptions& options) const {
  return snapshot()->Search(query, options);
}

SearchResponse XOntoRank::Search(std::string_view query_text,
                                 const SearchOptions& options) const {
  return Search(ParseQuery(query_text), options);
}

uint32_t XOntoRank::AddDocument(XmlDocument doc) {
  return writer_.AddDocument(std::move(doc));
}

uint32_t XOntoRank::StageDocument(XmlDocument doc) {
  return writer_.StageDocument(std::move(doc));
}

void XOntoRank::Commit() { writer_.Commit(); }

void XOntoRank::AdoptPrecomputed(XOntoDil dil) {
  writer_.AdoptPrecomputed(std::move(dil));
}

void XOntoRank::AdoptPrecomputed(FlatDil dil,
                                 std::shared_ptr<const void> backing) {
  writer_.AdoptPrecomputed(std::move(dil), std::move(backing));
}

const XmlNode* XOntoRank::ResolveResult(const QueryResult& result) const {
  return snapshot()->ResolveResult(result);
}

std::string XOntoRank::ResultFragmentXml(const QueryResult& result) const {
  return snapshot()->ResultFragmentXml(result);
}

}  // namespace xontorank
