#include "core/xontorank.h"

#include "xml/xml_writer.h"

namespace xontorank {

XOntoRank::XOntoRank(std::vector<XmlDocument> corpus, OntologySet systems,
                     IndexBuildOptions options)
    : corpus_(std::move(corpus)),
      index_(corpus_, std::move(systems), options),
      processor_(options.score) {}

std::vector<QueryResult> XOntoRank::Search(const KeywordQuery& query,
                                           size_t top_k) {
  if (query.empty()) return {};
  std::vector<const DilEntry*> lists;
  lists.reserve(query.size());
  for (const Keyword& kw : query.keywords) {
    lists.push_back(index_.GetEntry(kw));
  }
  return processor_.Execute(lists, top_k);
}

std::vector<QueryResult> XOntoRank::Search(std::string_view query_text,
                                           size_t top_k) {
  return Search(ParseQuery(query_text), top_k);
}

uint32_t XOntoRank::AddDocument(XmlDocument doc) {
  uint32_t doc_id = static_cast<uint32_t>(corpus_.size());
  doc.set_doc_id(doc_id);
  corpus_.push_back(std::move(doc));
  index_.AppendDocument(corpus_.back());
  return doc_id;
}

const XmlNode* XOntoRank::ResolveResult(const QueryResult& result) const {
  if (result.element.empty()) return nullptr;
  uint32_t doc_id = result.element.doc_id();
  if (doc_id >= corpus_.size()) return nullptr;
  return corpus_[doc_id].Resolve(result.element);
}

std::string XOntoRank::ResultFragmentXml(const QueryResult& result) const {
  const XmlNode* node = ResolveResult(result);
  if (node == nullptr) return "";
  XmlWriteOptions options;
  options.pretty = true;
  options.emit_declaration = false;
  return WriteXml(*node, options);
}

}  // namespace xontorank
