#ifndef XONTORANK_CORE_SNIPPET_H_
#define XONTORANK_CORE_SNIPPET_H_

#include <string>

#include "ir/query.h"
#include "xml/xml_node.h"

namespace xontorank {

/// Options of snippet construction.
struct SnippetOptions {
  /// Maximum snippet length in bytes (the window is centered on the first
  /// highlighted keyword; ellipses mark trimming).
  size_t max_length = 160;
  /// Markers wrapped around keyword occurrences.
  std::string open_mark = "[";
  std::string close_mark = "]";
};

/// Builds a one-line display snippet for a result element: the subtree's
/// human-visible text (character data plus displayName/title content, in
/// document order), with occurrences of the query keywords highlighted and
/// the window trimmed around the first match.
///
/// Keywords match case-insensitively at token boundaries; phrase keywords
/// must occur contiguously. An element with no visible text yields an empty
/// snippet. Results whose keywords matched only ontologically may have no
/// highlight — the snippet then shows the subtree's leading text.
std::string MakeSnippet(const XmlDocument& doc, const DeweyId& element,
                        const KeywordQuery& query,
                        const SnippetOptions& options = {});

/// The raw visible text of a subtree (what MakeSnippet highlights):
/// text nodes and displayName attribute values, space-joined, whitespace
/// collapsed.
std::string VisibleText(const XmlNode& subtree);

}  // namespace xontorank

#endif  // XONTORANK_CORE_SNIPPET_H_
