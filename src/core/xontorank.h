#ifndef XONTORANK_CORE_XONTORANK_H_
#define XONTORANK_CORE_XONTORANK_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/index_builder.h"
#include "core/query_processor.h"
#include "onto/ontology.h"
#include "xml/xml_node.h"

namespace xontorank {

/// The XOntoRank system facade: ontology-aware keyword search over a corpus
/// of XML EMR documents (§V architecture: preprocessing + query phase).
///
/// Typical use:
/// ```
///   Ontology onto = BuildSnomedCardiologyFragment();
///   std::vector<XmlDocument> corpus = ...;           // parse or generate
///   XOntoRank engine(std::move(corpus), onto, {});   // preprocessing phase
///   auto results = engine.Search("\"bronchial structure\" theophylline", 10);
///   for (const QueryResult& r : results)
///     std::cout << engine.ResultFragmentXml(r) << "\n";
/// ```
///
/// The engine owns the corpus; the ontologies are borrowed and must outlive
/// it. Multiple ontological systems (e.g. SNOMED CT + LOINC) can be
/// registered by passing an OntologySet; a bare Ontology converts
/// implicitly.
///
/// Thread-safety: concurrent Search calls are safe (the on-demand DIL cache
/// is synchronized); AddDocument is an exclusive operation.
class XOntoRank {
 public:
  XOntoRank(std::vector<XmlDocument> corpus, OntologySet systems,
            IndexBuildOptions options = {});

  XOntoRank(const XOntoRank&) = delete;
  XOntoRank& operator=(const XOntoRank&) = delete;

  /// Executes a parsed keyword query; returns the top-k results by
  /// descending score (`top_k == 0` returns all).
  std::vector<QueryResult> Search(const KeywordQuery& query, size_t top_k);

  /// Convenience: parses `query_text` (quoted phrases supported) first.
  std::vector<QueryResult> Search(std::string_view query_text, size_t top_k);

  /// Appends one document to the corpus and re-indexes incrementally; its
  /// doc id is assigned (its corpus position). Subsequent queries are
  /// identical to those of an engine freshly built over the full corpus.
  /// Returns the assigned doc id.
  uint32_t AddDocument(XmlDocument doc);

  /// The document a result belongs to.
  const XmlDocument& document(uint32_t doc_id) const {
    return corpus_[doc_id];
  }
  size_t corpus_size() const { return corpus_.size(); }

  /// Resolves a result to its XML element (the Database Access Module of
  /// Fig. 8); nullptr if the Dewey id does not address a node.
  const XmlNode* ResolveResult(const QueryResult& result) const;

  /// Serializes the result's XML fragment (e.g. Fig. 4), pretty-printed.
  std::string ResultFragmentXml(const QueryResult& result) const;

  const CorpusIndex& index() const { return index_; }
  CorpusIndex& mutable_index() { return index_; }
  const IndexBuildStats& build_stats() const { return index_.stats(); }

 private:
  std::vector<XmlDocument> corpus_;
  CorpusIndex index_;
  QueryProcessor processor_;
};

}  // namespace xontorank

#endif  // XONTORANK_CORE_XONTORANK_H_
