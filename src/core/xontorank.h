#ifndef XONTORANK_CORE_XONTORANK_H_
#define XONTORANK_CORE_XONTORANK_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/index_builder.h"
#include "core/index_snapshot.h"
#include "core/index_writer.h"
#include "core/query_processor.h"
#include "core/search_api.h"
#include "onto/ontology.h"
#include "xml/corpus.h"
#include "xml/xml_node.h"

namespace xontorank {

/// The XOntoRank system facade: ontology-aware keyword search over a corpus
/// of XML EMR documents (§V architecture: preprocessing + query phase).
///
/// Typical use:
/// ```
///   Ontology onto = BuildSnomedCardiologyFragment();
///   std::vector<XmlDocument> corpus = ...;           // parse or generate
///   XOntoRank engine(std::move(corpus), onto, {});   // preprocessing phase
///   auto response =
///       engine.Search("\"bronchial structure\" theophylline", {.top_k = 10});
///   for (const QueryResult& r : response.results)
///     std::cout << engine.ResultFragmentXml(r) << "\n";
/// ```
///
/// The facade is a thin shell over two layers:
///   - an immutable IndexSnapshot, the read-optimized serving state,
///     published to readers through an atomic shared_ptr;
///   - an IndexWriter, the write/build path that batches new documents and
///     publishes a fresh snapshot per commit.
///
/// The ontologies are borrowed and must outlive the engine. Multiple
/// ontological systems (e.g. SNOMED CT + LOINC) can be registered by
/// passing an OntologySet; a bare Ontology converts implicitly.
///
/// Thread-safety: Search (and every other const accessor) is safe from any
/// number of threads and never blocks on writers — it acquires the current
/// snapshot with one atomic load and runs entirely against that immutable
/// state. AddDocument/StageDocument/Commit may run concurrently with
/// searches; they serialize among themselves on the writer path. A search
/// overlapping a commit sees either the full pre-commit or the full
/// post-commit index, never a torn state.
class XOntoRank {
 public:
  XOntoRank(Corpus corpus, OntologySet systems,
            IndexBuildOptions options = {});

  /// Convenience: wraps a freshly built document vector.
  XOntoRank(std::vector<XmlDocument> corpus, OntologySet systems,
            IndexBuildOptions options = {})
      : XOntoRank(Corpus(std::move(corpus)), std::move(systems), options) {}

  /// Adopts an externally built snapshot (the engine store's load path).
  explicit XOntoRank(std::shared_ptr<const IndexSnapshot> snapshot)
      : writer_(std::move(snapshot)) {}

  XOntoRank(const XOntoRank&) = delete;
  XOntoRank& operator=(const XOntoRank&) = delete;

  /// The unified query entry point: executes `query` under `options`
  /// (exhaustive or ranked, serial or sharded-parallel, cached or not)
  /// against the current snapshot and returns results plus execution
  /// stats. Lock-free on the hot path: one atomic snapshot load, then
  /// immutable state only. Invalid options (rdil with top_k == 0) yield an
  /// empty response. See SearchOptions for the knobs.
  SearchResponse Search(const KeywordQuery& query,
                        const SearchOptions& options) const;

  /// Convenience: parses `query_text` (quoted phrases supported) first.
  SearchResponse Search(std::string_view query_text,
                        const SearchOptions& options) const;

  /// Appends one document to the corpus and publishes a new snapshot; its
  /// doc id is assigned (its corpus position). Subsequent queries are
  /// identical to those of an engine freshly built over the full corpus.
  /// In-flight searches keep serving from the previous snapshot. Returns
  /// the assigned doc id.
  uint32_t AddDocument(XmlDocument doc);

  /// Batch ingestion: stages a document for the next Commit without
  /// publishing (the document is not yet searchable); returns its assigned
  /// doc id.
  uint32_t StageDocument(XmlDocument doc);

  /// Publishes one snapshot covering every staged document (no-op if none
  /// are staged). One commit per batch amortizes the rebuild (legacy mode)
  /// or seals one segment per batch (LSM mode, options.lsm.enabled).
  void Commit();

  /// LSM mode: runs the compaction policy to a fixed point on the calling
  /// thread (see IndexWriter::CompactNow); a no-op in legacy mode.
  void CompactNow() { writer_.CompactNow(); }

  /// Blocks until no background compaction is in flight.
  void WaitForCompactionIdle() { writer_.WaitForCompactionIdle(); }

  /// Replaces the precomputed entry set with `dil` (typically one loaded
  /// from an index file) by publishing a republished snapshot: subsequent
  /// queries for its keywords are served without recomputation. Entries
  /// must have been built with the same corpus, systems and options or
  /// queries will be inconsistent.
  void AdoptPrecomputed(XOntoDil dil);

  /// Same, adopting an already-flat index (the LoadIndexFlat path). A
  /// mapped-view dil (a mmap-opened segment) passes its SegmentFile as
  /// `backing` so the mapping stays alive as long as any snapshot serves
  /// from it.
  void AdoptPrecomputed(FlatDil dil,
                        std::shared_ptr<const void> backing = nullptr);

  /// The current serving snapshot — the safe way to get a stable view for
  /// a batch of related calls (resolve + serialize + explain) while
  /// writers may be publishing.
  std::shared_ptr<const IndexSnapshot> snapshot() const {
    return writer_.snapshot();
  }

  /// The document a result belongs to. Documents are shared across
  /// snapshots, so the reference stays valid for the life of the engine.
  const XmlDocument& document(uint32_t doc_id) const {
    return snapshot()->document(doc_id);
  }
  size_t corpus_size() const { return snapshot()->corpus_size(); }

  /// Resolves a result to its XML element (the Database Access Module of
  /// Fig. 8); nullptr if the Dewey id does not address a node.
  const XmlNode* ResolveResult(const QueryResult& result) const;

  /// Serializes the result's XML fragment (e.g. Fig. 4), pretty-printed.
  std::string ResultFragmentXml(const QueryResult& result) const;

  /// The current snapshot's index. NOTE: the reference is only guaranteed
  /// stable until the next AddDocument/Commit/AdoptPrecomputed; callers
  /// overlapping with writers should hold snapshot() instead.
  const CorpusIndex& index() const { return snapshot()->index(); }
  const IndexBuildStats& build_stats() const {
    return snapshot()->build_stats();
  }

 private:
  IndexWriter writer_;
};

}  // namespace xontorank

#endif  // XONTORANK_CORE_XONTORANK_H_
