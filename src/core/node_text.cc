#include "core/node_text.h"

#include "common/string_util.h"

namespace xontorank {

namespace {

/// OID-ish strings (digits and dots) carry no searchable text.
bool LooksLikeCodeString(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if ((c < '0' || c > '9') && c != '.') return false;
  }
  return true;
}

}  // namespace

std::string TextualDescription(
    const XmlNode& element,
    const std::unordered_set<std::string>& excluded_attributes) {
  std::string out = element.tag();
  for (const XmlAttribute& attr : element.attributes()) {
    out.push_back(' ');
    out += attr.name;
    if (excluded_attributes.count(attr.name) > 0) continue;
    if (LooksLikeCodeString(attr.value)) continue;
    out.push_back(' ');
    out += attr.value;
  }
  for (const auto& child : element.children()) {
    if (child->is_text()) {
      out.push_back(' ');
      out += child->text();
    }
  }
  return out;
}

}  // namespace xontorank
