#include "core/index_writer.h"

#include <algorithm>
#include <span>
#include <utility>

#include "common/check.h"
#include "common/thread_pool.h"
#include "core/index_segment.h"

namespace xontorank {

IndexWriter::IndexWriter(Corpus corpus, OntologySet systems,
                         IndexBuildOptions options)
    : context_(OntologyContext::Create(std::move(systems), options)),
      options_(options),
      corpus_(std::move(corpus)) {
  MutexLock lock(mutex_);
  if (options_.lsm.enabled) {
    // The seed corpus seals as segment 0 (an empty corpus publishes an
    // empty, still-LSM snapshot — the first commit creates segment 0).
    if (corpus_.size() > 0) {
      auto docs = std::make_shared<Corpus>();
      for (size_t d = 0; d < corpus_.size(); ++d) docs->Add(corpus_.handle(d));
      segments_.push_back(IndexSegment::Build(next_segment_id_++,
                                              std::move(docs), 0, context_,
                                              options_));
    }
    PublishLsm();
  } else {
    published_.store(
        std::make_shared<const IndexSnapshot>(corpus_, context_, options_),
        std::memory_order_release);
  }
}

IndexWriter::IndexWriter(std::shared_ptr<const IndexSnapshot> initial)
    : context_(initial->context()),
      options_(initial->options()),
      corpus_(initial->corpus()) {
  if (initial->is_lsm()) {
    MutexLock lock(mutex_);
    segments_ = initial->segments();
    for (const auto& segment : segments_) {
      next_segment_id_ = std::max(next_segment_id_, segment->id() + 1);
    }
  }
  published_.store(std::move(initial), std::memory_order_release);
}

IndexWriter::~IndexWriter() {
  MutexLock lock(compaction_mutex_);
  while (compaction_inflight_) compaction_idle_.Wait(compaction_mutex_);
}

uint32_t IndexWriter::StageDocument(XmlDocument doc) {
  MutexLock lock(mutex_);
  uint32_t doc_id = static_cast<uint32_t>(corpus_.size() + pending_.size());
  doc.set_doc_id(doc_id);
  pending_.push_back(std::move(doc));
  return doc_id;
}

size_t IndexWriter::pending() const {
  MutexLock lock(mutex_);
  return pending_.size();
}

std::shared_ptr<const IndexSnapshot> IndexWriter::Publish(Corpus corpus,
                                                          XOntoDil adopted) {
  auto snapshot = std::make_shared<const IndexSnapshot>(
      std::move(corpus), context_, options_, std::move(adopted));
  corpus_ = snapshot->corpus();
  published_.store(snapshot, std::memory_order_release);
  return snapshot;
}

std::shared_ptr<const IndexSnapshot> IndexWriter::PublishLsm() {
  auto snapshot = std::make_shared<const IndexSnapshot>(corpus_, context_,
                                                        options_, segments_);
  published_.store(snapshot, std::memory_order_release);
  return snapshot;
}

std::shared_ptr<const IndexSnapshot> IndexWriter::CommitLocked() {
  if (pending_.empty()) return published_.load(std::memory_order_acquire);
  // Structural sharing: the extended corpus copies document *pointers*; the
  // documents themselves are shared with every snapshot already out there.
  uint32_t first_doc = static_cast<uint32_t>(corpus_.size());
  Corpus extended = corpus_;
  for (XmlDocument& doc : pending_) extended.Add(std::move(doc));
  pending_.clear();
  if (!options_.lsm.enabled) {
    return Publish(std::move(extended), XOntoDil());
  }
  // O(delta): only the staged documents are indexed — every previously
  // sealed segment is shared into the new snapshot untouched.
  auto delta = std::make_shared<Corpus>();
  for (size_t d = first_doc; d < extended.size(); ++d) {
    delta->Add(extended.handle(d));
  }
  corpus_ = std::move(extended);
  segments_.push_back(IndexSegment::Build(next_segment_id_++,
                                          std::move(delta), first_doc,
                                          context_, options_));
  auto snapshot = PublishLsm();
  if (options_.lsm.auto_compact) MaybeScheduleCompaction();
  return snapshot;
}

std::shared_ptr<const IndexSnapshot> IndexWriter::Commit() {
  MutexLock lock(mutex_);
  return CommitLocked();
}

uint32_t IndexWriter::AddDocument(XmlDocument doc) {
  MutexLock lock(mutex_);
  uint32_t doc_id = static_cast<uint32_t>(corpus_.size() + pending_.size());
  doc.set_doc_id(doc_id);
  // Any previously staged documents commit along with this one; they were
  // assigned the preceding ids, so they enter the corpus first.
  pending_.push_back(std::move(doc));
  CommitLocked();
  return doc_id;
}

void IndexWriter::AdoptPrecomputed(XOntoDil dil) {
  MutexLock lock(mutex_);
  XO_CHECK(!options_.lsm.enabled &&
           "AdoptPrecomputed targets the monolithic index; LSM snapshots "
           "adopt per-segment through the engine store's load path");
  XO_CHECK(pending_.empty() &&
           "commit staged documents before adopting a precomputed index");
  Publish(corpus_, std::move(dil));
}

void IndexWriter::AdoptPrecomputed(FlatDil dil,
                                   std::shared_ptr<const void> backing) {
  MutexLock lock(mutex_);
  XO_CHECK(!options_.lsm.enabled &&
           "AdoptPrecomputed targets the monolithic index; LSM snapshots "
           "adopt per-segment through the engine store's load path");
  XO_CHECK(pending_.empty() &&
           "commit staged documents before adopting a precomputed index");
  auto snapshot = std::make_shared<const IndexSnapshot>(
      corpus_, context_, options_, std::move(dil), std::move(backing));
  corpus_ = snapshot->corpus();
  published_.store(snapshot, std::memory_order_release);
}

bool IndexWriter::PickCompaction(size_t* begin, size_t* count) const {
  const size_t fanin = std::max<size_t>(2, options_.lsm.compaction_fanin);
  if (segments_.size() < fanin) return false;
  const size_t base = std::max<size_t>(1, options_.lsm.tier_base_postings);
  auto tier_of = [&](const IndexSegment& segment) {
    size_t postings = segment.index().stats().total_postings;
    size_t tier = 0;
    for (size_t cap = base; postings >= cap * fanin; cap *= fanin) ++tier;
    return tier;
  };
  size_t run_begin = 0;
  size_t run_len = 0;
  size_t run_tier = 0;
  for (size_t i = 0; i < segments_.size(); ++i) {
    size_t tier = tier_of(*segments_[i]);
    if (run_len == 0 || tier != run_tier) {
      run_begin = i;
      run_len = 1;
      run_tier = tier;
    } else {
      ++run_len;
    }
    if (run_len == fanin) {
      *begin = run_begin;
      *count = fanin;
      return true;
    }
  }
  return false;
}

void IndexWriter::MaybeScheduleCompaction() {
  size_t begin = 0;
  size_t count = 0;
  if (!PickCompaction(&begin, &count)) return;
  {
    MutexLock lock(compaction_mutex_);
    if (compaction_inflight_) return;  // the running drain will re-pick
    compaction_inflight_ = true;
  }
  // Detached task on the shared pool. ThreadPool::Post guarantees the
  // closure runs exactly once (inline at pool destruction if need be), so
  // the in-flight flag is always cleared and ~IndexWriter cannot hang.
  ThreadPool::Shared().Post([this] { CompactionDrain(); });
}

void IndexWriter::CompactionDrain() {
  while (true) {
    std::vector<std::shared_ptr<const IndexSegment>> inputs;
    size_t begin = 0;
    size_t count = 0;
    uint64_t merged_id = 0;
    {
      MutexLock lock(mutex_);
      if (!PickCompaction(&begin, &count)) break;
      inputs.assign(segments_.begin() + begin,
                    segments_.begin() + begin + count);
      merged_id = next_segment_id_++;
    }
    // Merge with no lock held: commits keep appending (and readers keep
    // serving) while the merge runs. The inputs stay at [begin, begin +
    // count) because commits only push_back and this drain is the only
    // remover (single in-flight compaction).
    auto merged = MergeSegments(std::span(inputs), merged_id, context_,
                                options_);
    {
      MutexLock lock(mutex_);
      segments_.erase(segments_.begin() + begin,
                      segments_.begin() + begin + count);
      segments_.insert(segments_.begin() + begin, std::move(merged));
      PublishLsm();
    }
  }
  // Clear the flag under compaction_mutex_ ALONE — see the header comment
  // on the destructor race.
  MutexLock lock(compaction_mutex_);
  compaction_inflight_ = false;
  compaction_idle_.NotifyAll();
}

void IndexWriter::CompactNow() {
  if (!options_.lsm.enabled) return;
  {
    MutexLock lock(compaction_mutex_);
    while (compaction_inflight_) compaction_idle_.Wait(compaction_mutex_);
    compaction_inflight_ = true;
  }
  CompactionDrain();
}

void IndexWriter::WaitForCompactionIdle() {
  MutexLock lock(compaction_mutex_);
  while (compaction_inflight_) compaction_idle_.Wait(compaction_mutex_);
}

}  // namespace xontorank
