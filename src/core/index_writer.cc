#include "core/index_writer.h"

#include <utility>

#include "common/check.h"

namespace xontorank {

IndexWriter::IndexWriter(Corpus corpus, OntologySet systems,
                         IndexBuildOptions options)
    : context_(OntologyContext::Create(std::move(systems), options)),
      options_(options),
      corpus_(std::move(corpus)) {
  published_.store(
      std::make_shared<const IndexSnapshot>(corpus_, context_, options_),
      std::memory_order_release);
}

IndexWriter::IndexWriter(std::shared_ptr<const IndexSnapshot> initial)
    : context_(initial->context()),
      options_(initial->options()),
      corpus_(initial->corpus()) {
  published_.store(std::move(initial), std::memory_order_release);
}

uint32_t IndexWriter::StageDocument(XmlDocument doc) {
  MutexLock lock(mutex_);
  uint32_t doc_id = static_cast<uint32_t>(corpus_.size() + pending_.size());
  doc.set_doc_id(doc_id);
  pending_.push_back(std::move(doc));
  return doc_id;
}

size_t IndexWriter::pending() const {
  MutexLock lock(mutex_);
  return pending_.size();
}

std::shared_ptr<const IndexSnapshot> IndexWriter::Publish(Corpus corpus,
                                                          XOntoDil adopted) {
  auto snapshot = std::make_shared<const IndexSnapshot>(
      std::move(corpus), context_, options_, std::move(adopted));
  corpus_ = snapshot->corpus();
  published_.store(snapshot, std::memory_order_release);
  return snapshot;
}

std::shared_ptr<const IndexSnapshot> IndexWriter::Commit() {
  MutexLock lock(mutex_);
  if (pending_.empty()) return published_.load(std::memory_order_acquire);
  // Structural sharing: the extended corpus copies document *pointers*; the
  // documents themselves are shared with every snapshot already out there.
  Corpus extended = corpus_;
  for (XmlDocument& doc : pending_) extended.Add(std::move(doc));
  pending_.clear();
  return Publish(std::move(extended), XOntoDil());
}

uint32_t IndexWriter::AddDocument(XmlDocument doc) {
  MutexLock lock(mutex_);
  uint32_t doc_id = static_cast<uint32_t>(corpus_.size() + pending_.size());
  doc.set_doc_id(doc_id);
  // Any previously staged documents commit along with this one; they were
  // assigned the preceding ids, so they enter the corpus first.
  Corpus extended = corpus_;
  for (XmlDocument& staged : pending_) extended.Add(std::move(staged));
  extended.Add(std::move(doc));
  pending_.clear();
  Publish(std::move(extended), XOntoDil());
  return doc_id;
}

void IndexWriter::AdoptPrecomputed(XOntoDil dil) {
  MutexLock lock(mutex_);
  XO_CHECK(pending_.empty() &&
           "commit staged documents before adopting a precomputed index");
  Publish(corpus_, std::move(dil));
}

void IndexWriter::AdoptPrecomputed(FlatDil dil,
                                   std::shared_ptr<const void> backing) {
  MutexLock lock(mutex_);
  XO_CHECK(pending_.empty() &&
           "commit staged documents before adopting a precomputed index");
  auto snapshot = std::make_shared<const IndexSnapshot>(
      corpus_, context_, options_, std::move(dil), std::move(backing));
  corpus_ = snapshot->corpus();
  published_.store(snapshot, std::memory_order_release);
}

}  // namespace xontorank
