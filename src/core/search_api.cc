#include "core/search_api.h"

namespace xontorank {

std::string_view QueryExecutionName(QueryExecution e) {
  switch (e) {
    case QueryExecution::kDil:
      return "dil";
    case QueryExecution::kRdil:
      return "rdil";
  }
  return "?";
}

std::string_view PruningModeName(PruningMode mode) {
  switch (mode) {
    case PruningMode::kExact:
      return "exact";
    case PruningMode::kBlockMax:
      return "blockmax";
  }
  return "?";
}

Status SearchOptions::Validate() const {
  if (strategy == QueryExecution::kRdil && top_k == 0) {
    return Status::InvalidArgument(
        "top_k == 0 (all results) requires the exhaustive dil strategy; "
        "ranked (rdil) evaluation needs a finite top_k >= 1");
  }
  return Status::OK();
}

}  // namespace xontorank
