#ifndef XONTORANK_CORE_INDEX_BUILDER_H_
#define XONTORANK_CORE_INDEX_BUILDER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/sync.h"
#include "core/elem_rank.h"
#include "core/flat_dil.h"
#include "core/onto_score.h"
#include "core/ontology_context.h"
#include "core/options.h"
#include "core/xonto_dil.h"
#include "ir/query.h"
#include "ir/text_index.h"
#include "onto/ontology.h"
#include "onto/ontology_index.h"
#include "onto/ontology_set.h"
#include "xml/corpus.h"
#include "xml/xml_node.h"

namespace xontorank {

/// Index-construction statistics (reported by Table III's bench).
struct IndexBuildStats {
  size_t documents = 0;
  size_t indexed_nodes = 0;
  size_t code_nodes = 0;
  size_t precomputed_keywords = 0;
  size_t total_postings = 0;
  double build_millis = 0.0;
};

/// The queryable XOntoRank index over a CDA corpus and an ontology.
///
/// Construction runs the three §V-B stages:
///   1. *Full-text indexing*: every element node of every document becomes
///      an IR unit scored by BM25 over its §III textual description; the
///      ontology's concepts are indexed the same way (shared through the
///      OntologyContext, so successive snapshots of a growing corpus never
///      re-index the ontology).
///   2. *OntoScore computation*: per keyword, Algorithm 1 (merged
///      best-first expansion) produces the OntoScore hash-map row. Rows are
///      memoized in the context's row cache: rebuilding the index after a
///      corpus extension reuses them untouched.
///   3. *DIL creation*: per keyword, a Dewey inverted list whose posting
///      scores are NS(w,v) = max(IRS(w,v), ω·OS(w, concept(v))) (Eq. 5).
///
/// Entries for keywords outside the precomputed vocabulary (notably quoted
/// phrases) are built on demand and cached; results are identical either
/// way.
///
/// The precomputed vocabulary is held as an immutable FlatDil (columnar
/// postings, skip tables — core/flat_dil.h): query execution reads it
/// through GetListRef without materializing legacy entries, lock-free.
///
/// Thread-safety: a CorpusIndex is immutable after construction. Any number
/// of threads may call the const accessors concurrently; GetListRef serves
/// precomputed (and adopted) lists without taking any lock, and
/// synchronizes only the on-demand side cache. Returned entry pointers are
/// stable for the life of the index.
// xo-analyze: allow(backing-before-view) intentional propagation: the
// holder pins the mapping (IndexSnapshot declares backing_ first).
class CorpusIndex {
 public:
  /// Full constructor: `corpus` must outlive the index (the IndexSnapshot
  /// layer owns both and guarantees this); `context` carries the ontology
  /// half and must have been created with the same strategy/score options.
  /// A non-empty `adopted` dil (typically loaded from an index file)
  /// replaces stage 2+3 entirely: its entries are served as the precomputed
  /// set and the vocabulary precomputation is skipped. Entries must have
  /// been built with the same corpus, systems and options or queries will
  /// be inconsistent.
  CorpusIndex(const Corpus& corpus,
              std::shared_ptr<const OntologyContext> context,
              IndexBuildOptions options, XOntoDil adopted = {});

  /// Same, adopting an already-flat index (the near-zero-copy load path:
  /// LoadIndexFlat decodes the wire format straight into these columns).
  CorpusIndex(const Corpus& corpus,
              std::shared_ptr<const OntologyContext> context,
              IndexBuildOptions options, FlatDil adopted);

  /// Convenience for standalone use (tests, benches, the query-expansion
  /// baseline): builds a private OntologyContext. The ontologies inside
  /// `systems` must outlive the index; a bare `Ontology&` converts
  /// implicitly to a one-system collection.
  CorpusIndex(const Corpus& corpus, OntologySet systems,
              IndexBuildOptions options);

  const IndexBuildStats& stats() const { return stats_; }
  const IndexBuildOptions& options() const { return options_; }

  /// The shared ontology half (systems, stage-1 indexes, row cache).
  const std::shared_ptr<const OntologyContext>& context() const {
    return context_;
  }

  /// The registered ontological systems collection (§III).
  const OntologySet& systems() const { return context_->systems(); }

  /// Convenience: the primary (first) system.
  const Ontology& ontology() const { return systems().system(0); }
  const OntologyIndex& ontology_index(size_t system = 0) const {
    return context_->index(system);
  }
  const Corpus& corpus() const { return *corpus_; }

  /// The inverted list for `keyword` as an execution reference. Keywords in
  /// the precomputed vocabulary resolve to their flat list — zero copies,
  /// no lock; anything else (phrases, out-of-vocabulary tokens) goes
  /// through the demand cache. This is the serving path's entry point.
  DilListRef GetListRef(const Keyword& keyword) const
      XO_EXCLUDES(demand_mutex_);

  /// The inverted list for `keyword` as a legacy materialized entry,
  /// building (or thawing, for precomputed keywords) and caching it if
  /// needed. The returned pointer is stable for the life of the index;
  /// nullptr is never returned (an unmatched keyword yields an empty
  /// list). Prefer GetListRef on hot paths — this copies flat lists into
  /// the demand cache on first request.
  const DilEntry* GetEntry(const Keyword& keyword) const
      XO_EXCLUDES(demand_mutex_);

  /// The precomputed vocabulary's flat serving representation.
  const FlatDil& flat_dil() const { return flat_; }

  /// Builds the inverted list for `keyword` without touching the entry or
  /// row caches (used by the Table III bench to time entry creation from
  /// scratch).
  std::vector<DilPosting> BuildPostings(const Keyword& keyword) const;

  /// The OntoScore hash-map row for `keyword` within one ontological
  /// system (stage 2 output), computed fresh; empty under the XRANK
  /// strategy.
  OntoScoreMap ComputeOntoScoreRow(const Keyword& keyword,
                                   size_t system = 0) const;

  /// The precomputed single-token vocabulary.
  std::vector<std::string> PrecomputedVocabulary() const;

  /// Per-node support breakdown backing Eq. 5, used by the explain API:
  /// the node's textual IRS for the keyword, and — when the node is a code
  /// node — its concept and OntoScore under this index's strategy.
  struct NodeSupport {
    double textual_irs = 0.0;
    bool is_code_node = false;
    size_t system = 0;
    ConceptId concept_id = kInvalidConcept;
    double onto_score = 0.0;
  };
  /// `dewey` must address an element of this corpus; returns a zero
  /// NodeSupport for unknown addresses.
  NodeSupport ComputeNodeSupport(const DeweyId& dewey,
                                 const Keyword& keyword) const;

  /// Total postings currently materialized (precomputed + cached).
  size_t TotalPostings() const XO_EXCLUDES(demand_mutex_);

  /// A copy of every materialized entry — precomputed and demand-cached —
  /// for persistence.
  XOntoDil MaterializedCopy() const XO_EXCLUDES(demand_mutex_);

 private:
  void IndexCorpus();
  void Precompute();
  /// BuildPostings through the context's row cache (exact same output;
  /// used by Precompute and GetEntry so snapshot rebuilds share rows).
  std::vector<DilPosting> BuildPostingsCached(const Keyword& keyword) const;
  std::vector<DilPosting> BuildPostingsFromRows(
      const Keyword& keyword,
      const std::vector<OntoScoreRowCache::Row>& rows) const;

  /// Stage-1 matches for `keyword` across the whole corpus, sorted by unit
  /// id. Legacy mode reads node_index_; LSM mode concatenates the per-
  /// document indexes (unit id ranges ascend with document order, so the
  /// concatenation is already sorted).
  std::vector<ScoredUnit> LookupUnits(const Keyword& keyword) const;

  /// The corpus half of the precomputed vocabulary, sorted and unique.
  std::vector<std::string> CorpusVocabulary() const;

  const Corpus* corpus_;
  std::shared_ptr<const OntologyContext> context_;
  IndexBuildOptions options_;

  TextIndex node_index_;  ///< stage 1 over document nodes (legacy mode)
  /// LSM mode's stage 1: one TextIndex per document, each its own BM25
  /// collection (document-scoped statistics — see LsmOptions). Unit ids
  /// stay global, so lookups across documents concatenate directly.
  /// Empty in legacy mode, where node_index_ is used instead.
  std::vector<TextIndex> doc_indexes_;
  std::vector<DeweyId> unit_deweys_;  ///< unit id → node address
  /// A code node resolved against its ontological system.
  struct CodeUnit {
    uint32_t unit;
    uint32_t system;
    ConceptId concept_id;
  };
  std::vector<CodeUnit> code_units_;

  std::unique_ptr<ElemRank> elem_rank_;  ///< set when options.use_elem_rank

  /// Precomputed (or adopted) lists, frozen columnar; immutable once the
  /// constructor returns, so lookups need no synchronization.
  FlatDil flat_;
  /// On-demand entries (out-of-vocabulary keywords, phrases). The mutex
  /// guards only this side cache; entry construction itself runs outside
  /// the lock. Entry pointers handed out remain stable after the lock is
  /// dropped (XOntoDil never moves or erases entries), which is an
  /// invariant the annotations cannot express — hence const DilEntry*
  /// results escape the guarded region by design.
  mutable Mutex demand_mutex_;
  mutable XOntoDil demand_ XO_GUARDED_BY(demand_mutex_);
  IndexBuildStats stats_;
};

}  // namespace xontorank

#endif  // XONTORANK_CORE_INDEX_BUILDER_H_
