#ifndef XONTORANK_CORE_INDEX_BUILDER_H_
#define XONTORANK_CORE_INDEX_BUILDER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/elem_rank.h"
#include "core/onto_score.h"
#include "core/options.h"
#include "core/xonto_dil.h"
#include "ir/query.h"
#include "ir/text_index.h"
#include "onto/ontology.h"
#include "onto/ontology_index.h"
#include "onto/ontology_set.h"
#include "xml/xml_node.h"

namespace xontorank {

/// Options of the preprocessing phase (§V).
struct IndexBuildOptions {
  /// Which OntoScore strategy the XOnto-DILs embed. kXRank disables the
  /// ontology entirely (the baseline).
  Strategy strategy = Strategy::kRelationships;

  /// Decay / threshold / ω / BM25 knobs.
  ScoreOptions score;

  /// Which keywords get precomputed DIL entries (§V-B "Vocabulary").
  enum class VocabularyMode {
    /// Tokens occurring in the CDA corpus only.
    kCorpusOnly,
    /// Union of corpus tokens and ontology term tokens — the paper's full
    /// Vocabulary definition. Keywords that appear only in the ontology can
    /// still match documents through code nodes.
    kCorpusAndOntology,
    /// No precomputation; every entry is built on demand (lazy). Queries
    /// return identical results; only build cost moves to query time.
    kNone,
  };
  VocabularyMode vocabulary_mode = VocabularyMode::kCorpusAndOntology;

  /// If true, posting scores are modulated by ElemRank, XRANK's structural
  /// PageRank over elements (§V-A: "ElemRank could be incorporated in NS").
  /// The paper disabled it (its corpus had no ID-IDREF edges); our CDA
  /// corpus carries reference→content links, so the extension is
  /// exercisable. Final score: NS · ((1-λ) + λ·ElemRank(v)).
  bool use_elem_rank = false;

  /// Blend λ between pure NS (0) and fully ElemRank-modulated (1).
  double elem_rank_blend = 0.5;

  /// ElemRank damping/iteration knobs (used when use_elem_rank is set).
  ElemRankOptions elem_rank;

  /// Worker threads for vocabulary precomputation (stage 2+3 of §V-B are
  /// embarrassingly parallel across keywords). 1 = serial; 0 = one thread
  /// per hardware core. Query-time entry caching remains single-threaded.
  size_t num_threads = 1;
};

/// Index-construction statistics (reported by Table III's bench).
struct IndexBuildStats {
  size_t documents = 0;
  size_t indexed_nodes = 0;
  size_t code_nodes = 0;
  size_t precomputed_keywords = 0;
  size_t total_postings = 0;
  double build_millis = 0.0;
};

/// The queryable XOntoRank index over a CDA corpus and an ontology.
///
/// Construction runs the three §V-B stages:
///   1. *Full-text indexing*: every element node of every document becomes
///      an IR unit scored by BM25 over its §III textual description; the
///      ontology's concepts are indexed the same way.
///   2. *OntoScore computation*: per keyword, Algorithm 1 (merged
///      best-first expansion) produces the OntoScore hash-map row.
///   3. *DIL creation*: per keyword, a Dewey inverted list whose posting
///      scores are NS(w,v) = max(IRS(w,v), ω·OS(w, concept(v))) (Eq. 5).
///
/// Entries for keywords outside the precomputed vocabulary (notably quoted
/// phrases) are built on demand and cached; results are identical either
/// way.
///
/// Thread-safety: after construction, any number of threads may call the
/// const accessors and GetEntry concurrently (the entry cache is mutex-
/// guarded and returned pointers are stable). AdoptPrecomputed and
/// AppendDocument are exclusive operations: no other call may run
/// concurrently with them.
class CorpusIndex {
 public:
  /// `corpus` and every ontology in `systems` must outlive the index. A
  /// bare `Ontology&` converts implicitly to a one-system collection.
  CorpusIndex(const std::vector<XmlDocument>& corpus, OntologySet systems,
              IndexBuildOptions options);

  const IndexBuildStats& stats() const { return stats_; }
  const IndexBuildOptions& options() const { return options_; }

  /// The registered ontological systems collection (§III).
  const OntologySet& systems() const { return systems_; }

  /// Convenience: the primary (first) system.
  const Ontology& ontology() const { return systems_.system(0); }
  const OntologyIndex& ontology_index(size_t system = 0) const {
    return *onto_indexes_[system];
  }
  const std::vector<XmlDocument>& corpus() const { return *corpus_; }

  /// The inverted list for `keyword` under this index's strategy, building
  /// and caching it if needed. The returned pointer is stable for the life
  /// of the index; nullptr is never returned (an unmatched keyword yields
  /// an empty list).
  const DilEntry* GetEntry(const Keyword& keyword);

  /// Builds the inverted list for `keyword` without touching the cache
  /// (used by the Table III bench to time entry creation).
  std::vector<DilPosting> BuildPostings(const Keyword& keyword) const;

  /// The OntoScore hash-map row for `keyword` within one ontological
  /// system (stage 2 output); empty under the XRANK strategy.
  OntoScoreMap ComputeOntoScoreRow(const Keyword& keyword,
                                   size_t system = 0) const;

  /// The precomputed single-token vocabulary.
  std::vector<std::string> PrecomputedVocabulary() const;

  /// Per-node support breakdown backing Eq. 5, used by the explain API:
  /// the node's textual IRS for the keyword, and — when the node is a code
  /// node — its concept and OntoScore under this index's strategy.
  struct NodeSupport {
    double textual_irs = 0.0;
    bool is_code_node = false;
    size_t system = 0;
    ConceptId concept_id = kInvalidConcept;
    double onto_score = 0.0;
  };
  /// `dewey` must address an element of this corpus; returns a zero
  /// NodeSupport for unknown addresses.
  NodeSupport ComputeNodeSupport(const DeweyId& dewey,
                                 const Keyword& keyword) const;

  /// Total postings currently materialized (precomputed + cached).
  size_t TotalPostings() const { return dil_.TotalPostings(); }

  /// A snapshot of every materialized entry (for persistence).
  const XOntoDil& materialized() const { return dil_; }

  /// Replaces the materialized entries with `dil` (typically one loaded
  /// from an index file): subsequent GetEntry calls for its keywords are
  /// served without recomputation. Entries must have been built with the
  /// same corpus, systems and options or queries will be inconsistent.
  void AdoptPrecomputed(XOntoDil dil);

  /// Indexes one more document, appended to the corpus vector this index
  /// was built over (the caller must have pushed it there already; the
  /// document's doc id must be its corpus position). Collection statistics
  /// (df, average length) change globally, so every materialized entry is
  /// dropped and — under an eager vocabulary mode — recomputed; queries
  /// afterwards are identical to a fresh build over the extended corpus.
  void AppendDocument(const XmlDocument& doc);

 private:
  void IndexCorpus();
  void Precompute();

  const std::vector<XmlDocument>* corpus_;
  OntologySet systems_;
  IndexBuildOptions options_;

  TextIndex node_index_;  ///< stage 1 over document nodes
  /// Stage 1 over each system's concepts (parallel to systems_).
  std::vector<std::unique_ptr<OntologyIndex>> onto_indexes_;
  std::vector<DeweyId> unit_deweys_;  ///< unit id → node address
  /// A code node resolved against its ontological system.
  struct CodeUnit {
    uint32_t unit;
    uint32_t system;
    ConceptId concept_id;
  };
  std::vector<CodeUnit> code_units_;

  std::unique_ptr<ElemRank> elem_rank_;  ///< set when options.use_elem_rank

  /// Guards dil_ for concurrent GetEntry calls. BuildPostings itself is
  /// const and lock-free; only cache insertion is serialized.
  mutable std::mutex dil_mutex_;
  XOntoDil dil_;  ///< precomputed + demand-cached entries
  IndexBuildStats stats_;
};

}  // namespace xontorank

#endif  // XONTORANK_CORE_INDEX_BUILDER_H_
