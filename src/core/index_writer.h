#ifndef XONTORANK_CORE_INDEX_WRITER_H_
#define XONTORANK_CORE_INDEX_WRITER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/sync.h"
#include "core/index_snapshot.h"
#include "xml/corpus.h"

namespace xontorank {

/// The engine's write/build path: absorbs new documents, batches them, and
/// publishes a fresh immutable IndexSnapshot per commit. Readers are never
/// blocked — they keep serving from the previously published snapshot while
/// a commit builds, and switch over via one atomic shared_ptr store.
///
/// Publication protocol:
///   1. writer (under the writer mutex) extends the corpus value —
///      structural sharing: only document pointers are copied;
///   2. writer builds a complete IndexSnapshot off to the side, reusing the
///      shared OntologyContext (ontology indexes + OntoScore row cache);
///   3. writer atomically stores the new snapshot into `published_`
///      (release); readers pick it up with an acquire load.
/// A reader therefore observes either the entire old snapshot or the entire
/// new one, never a partially built index.
///
/// Scores match a fresh build over the extended corpus exactly. In legacy
/// mode BM25 collection statistics (df, average length) change globally on
/// every commit, so the corpus-dependent posting lists are re-derived rather
/// than patched — commit cost is O(corpus). Under LSM mode
/// (options.lsm.enabled, DESIGN.md §15) scores are document-scoped, so a
/// commit seals ONLY the staged delta into a new immutable IndexSegment and
/// publishes a snapshot sharing every previous segment — commit cost is
/// O(delta). Either way the expensive ontological rows are reused from the
/// context's cache (see IndexSnapshot's structural-sharing notes).
///
/// LSM mode additionally runs a background compactor: when the segment set
/// accumulates >= lsm.compaction_fanin segments of the same size tier, a
/// detached task on the shared ThreadPool merges them (MergeSegments — bit-
/// identical to fresh-sealing the union) and publishes the compacted
/// snapshot. At most one compaction drain is in flight per writer; commits
/// never wait for it. CompactNow()/WaitForCompactionIdle() give tests and
/// shutdown paths a deterministic handle on it.
///
/// Thread-safety: snapshot() is safe from any thread and lock-free on the
/// reader side. StageDocument/Commit/AddDocument/AdoptPrecomputed serialize
/// on an internal writer mutex that readers never touch. The compactor's
/// in-flight flag lives under a second mutex ordered strictly after the
/// writer mutex (see the lock-order table in common/sync.h).
class IndexWriter {
 public:
  /// Builds and publishes the initial snapshot over `corpus`. The
  /// ontologies inside `systems` must outlive the writer.
  IndexWriter(Corpus corpus, OntologySet systems, IndexBuildOptions options);

  /// Adopts an externally built snapshot (the engine store's load path) as
  /// the published state; subsequent commits extend it. An LSM snapshot
  /// resumes its segment set (fresh segment ids continue past the largest
  /// adopted id).
  explicit IndexWriter(std::shared_ptr<const IndexSnapshot> initial);

  /// Waits for any in-flight compaction before tearing down (the detached
  /// compactor task captures `this`).
  ~IndexWriter();

  IndexWriter(const IndexWriter&) = delete;
  IndexWriter& operator=(const IndexWriter&) = delete;

  /// The currently published snapshot; never nullptr. One atomic acquire
  /// load — this is the whole reader hot path.
  std::shared_ptr<const IndexSnapshot> snapshot() const {
    return published_.load(std::memory_order_acquire);
  }

  /// Stages one document for the next commit and assigns its doc id (its
  /// final corpus position). The document is NOT searchable until Commit.
  uint32_t StageDocument(XmlDocument doc) XO_EXCLUDES(mutex_);

  /// Documents staged but not yet committed.
  size_t pending() const XO_EXCLUDES(mutex_);

  /// Builds and publishes a snapshot covering all staged documents; returns
  /// the published snapshot (the current one if nothing was staged).
  /// Queries against the result are identical to a fresh engine built over
  /// the full corpus.
  std::shared_ptr<const IndexSnapshot> Commit() XO_EXCLUDES(mutex_);

  /// Stage + Commit in one step: the document is searchable on return.
  uint32_t AddDocument(XmlDocument doc) XO_EXCLUDES(mutex_);

  /// Republishes the current corpus with `dil` as the precomputed entry
  /// set (typically one loaded from an index file). Entries must have been
  /// built with the same corpus, systems and options or queries will be
  /// inconsistent.
  void AdoptPrecomputed(XOntoDil dil) XO_EXCLUDES(mutex_);

  /// Same, adopting an already-flat index (the LoadIndexFlat path). For a
  /// mapped-view dil (SegmentFile::MakeView), `backing` is the owner of
  /// the mapped memory; the published snapshot pins it alive.
  void AdoptPrecomputed(FlatDil dil,
                        std::shared_ptr<const void> backing = nullptr)
      XO_EXCLUDES(mutex_);

  /// LSM mode: runs the compaction policy to a fixed point on the calling
  /// thread (claiming the single in-flight slot first, so it never races a
  /// background drain) and returns when no further merge is eligible. A
  /// no-op in legacy mode or when nothing is eligible. Deterministic
  /// handle for tests and for `auto_compact = false` setups.
  void CompactNow() XO_EXCLUDES(mutex_, compaction_mutex_);

  /// Blocks until no compaction is in flight. Note the next commit may
  /// schedule a new one; call under quiesced writers for a stable state.
  void WaitForCompactionIdle() XO_EXCLUDES(mutex_, compaction_mutex_);

 private:
  /// Builds a snapshot over `corpus` and publishes it. Holding the writer
  /// mutex across the (expensive) snapshot build is what serializes
  /// commits; readers never wait on it. Legacy mode only.
  std::shared_ptr<const IndexSnapshot> Publish(Corpus corpus, XOntoDil adopted)
      XO_REQUIRES(mutex_);

  /// Commits the staged batch under the already-held writer mutex: legacy
  /// mode rebuilds over the extended corpus; LSM mode seals the delta into
  /// one new segment, publishes, and (auto_compact) nudges the compactor.
  std::shared_ptr<const IndexSnapshot> CommitLocked() XO_REQUIRES(mutex_);

  /// Publishes a snapshot over the current corpus_/segments_ (LSM mode).
  std::shared_ptr<const IndexSnapshot> PublishLsm() XO_REQUIRES(mutex_);

  /// Tiered compaction policy: returns true with [*begin, *begin + *count)
  /// set to the first contiguous run of `compaction_fanin` segments sharing
  /// a size tier (tier = log_fanin(postings / tier_base_postings)).
  bool PickCompaction(size_t* begin, size_t* count) const
      XO_REQUIRES(mutex_);

  /// Schedules a background CompactionDrain if one is eligible and none is
  /// in flight.
  void MaybeScheduleCompaction() XO_REQUIRES(mutex_);

  /// The compactor body: repeatedly {pick + claim a merged id under mutex_,
  /// merge UNLOCKED, splice + publish under mutex_} until no merge is
  /// eligible, then clears the in-flight flag under compaction_mutex_
  /// ALONE (never while holding mutex_ — the destructor may win the wake-up
  /// race and destroy the writer the moment the flag reads false, so
  /// touching any other member afterwards would be use-after-free). The
  /// window between the final pick check and the flag clear can swallow one
  /// scheduling attempt; that is benign — the next commit re-picks.
  void CompactionDrain() XO_EXCLUDES(mutex_, compaction_mutex_);

  std::shared_ptr<const OntologyContext> context_;
  IndexBuildOptions options_;

  mutable Mutex mutex_;  ///< serializes writers; readers never take it
  /// Committed corpus value.
  Corpus corpus_ XO_GUARDED_BY(mutex_);
  /// Staged batch for the next Commit.
  std::vector<XmlDocument> pending_ XO_GUARDED_BY(mutex_);
  /// LSM mode: the committed segment set (what PublishLsm snapshots) and
  /// the next fresh segment id. Both empty/0 in legacy mode.
  std::vector<std::shared_ptr<const IndexSegment>> segments_
      XO_GUARDED_BY(mutex_);
  uint64_t next_segment_id_ XO_GUARDED_BY(mutex_) = 0;

  /// Compactor rendezvous. Ordered strictly after mutex_ (the scheduler
  /// checks the flag while holding mutex_); never the other way around —
  /// the drain loop takes them in alternation, not nested.
  mutable Mutex compaction_mutex_ XO_ACQUIRED_AFTER(mutex_);
  bool compaction_inflight_ XO_GUARDED_BY(compaction_mutex_) = false;
  CondVar compaction_idle_;

  /// The serving snapshot. Not guarded: readers load it lock-free with
  /// acquire ordering; only Publish (under mutex_) stores it.
  std::atomic<std::shared_ptr<const IndexSnapshot>> published_;
};

}  // namespace xontorank

#endif  // XONTORANK_CORE_INDEX_WRITER_H_
