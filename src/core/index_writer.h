#ifndef XONTORANK_CORE_INDEX_WRITER_H_
#define XONTORANK_CORE_INDEX_WRITER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/sync.h"
#include "core/index_snapshot.h"
#include "xml/corpus.h"

namespace xontorank {

/// The engine's write/build path: absorbs new documents, batches them, and
/// publishes a fresh immutable IndexSnapshot per commit. Readers are never
/// blocked — they keep serving from the previously published snapshot while
/// a commit builds, and switch over via one atomic shared_ptr store.
///
/// Publication protocol:
///   1. writer (under the writer mutex) extends the corpus value —
///      structural sharing: only document pointers are copied;
///   2. writer builds a complete IndexSnapshot off to the side, reusing the
///      shared OntologyContext (ontology indexes + OntoScore row cache);
///   3. writer atomically stores the new snapshot into `published_`
///      (release); readers pick it up with an acquire load.
/// A reader therefore observes either the entire old snapshot or the entire
/// new one, never a partially built index.
///
/// Scores match a fresh build over the extended corpus exactly: BM25
/// collection statistics (df, average length) change globally on every
/// commit, so the corpus-dependent posting lists are re-derived rather than
/// patched; the expensive ontological rows are reused from the context's
/// cache (see IndexSnapshot's structural-sharing notes).
///
/// Thread-safety: snapshot() is safe from any thread and lock-free on the
/// reader side. StageDocument/Commit/AddDocument/AdoptPrecomputed serialize
/// on an internal writer mutex that readers never touch.
class IndexWriter {
 public:
  /// Builds and publishes the initial snapshot over `corpus`. The
  /// ontologies inside `systems` must outlive the writer.
  IndexWriter(Corpus corpus, OntologySet systems, IndexBuildOptions options);

  /// Adopts an externally built snapshot (the engine store's load path) as
  /// the published state; subsequent commits extend it.
  explicit IndexWriter(std::shared_ptr<const IndexSnapshot> initial);

  IndexWriter(const IndexWriter&) = delete;
  IndexWriter& operator=(const IndexWriter&) = delete;

  /// The currently published snapshot; never nullptr. One atomic acquire
  /// load — this is the whole reader hot path.
  std::shared_ptr<const IndexSnapshot> snapshot() const {
    return published_.load(std::memory_order_acquire);
  }

  /// Stages one document for the next commit and assigns its doc id (its
  /// final corpus position). The document is NOT searchable until Commit.
  uint32_t StageDocument(XmlDocument doc) XO_EXCLUDES(mutex_);

  /// Documents staged but not yet committed.
  size_t pending() const XO_EXCLUDES(mutex_);

  /// Builds and publishes a snapshot covering all staged documents; returns
  /// the published snapshot (the current one if nothing was staged).
  /// Queries against the result are identical to a fresh engine built over
  /// the full corpus.
  std::shared_ptr<const IndexSnapshot> Commit() XO_EXCLUDES(mutex_);

  /// Stage + Commit in one step: the document is searchable on return.
  uint32_t AddDocument(XmlDocument doc) XO_EXCLUDES(mutex_);

  /// Republishes the current corpus with `dil` as the precomputed entry
  /// set (typically one loaded from an index file). Entries must have been
  /// built with the same corpus, systems and options or queries will be
  /// inconsistent.
  void AdoptPrecomputed(XOntoDil dil) XO_EXCLUDES(mutex_);

  /// Same, adopting an already-flat index (the LoadIndexFlat path). For a
  /// mapped-view dil (SegmentFile::MakeView), `backing` is the owner of
  /// the mapped memory; the published snapshot pins it alive.
  void AdoptPrecomputed(FlatDil dil,
                        std::shared_ptr<const void> backing = nullptr)
      XO_EXCLUDES(mutex_);

 private:
  /// Builds a snapshot over `corpus` and publishes it. Holding the writer
  /// mutex across the (expensive) snapshot build is what serializes
  /// commits; readers never wait on it.
  std::shared_ptr<const IndexSnapshot> Publish(Corpus corpus, XOntoDil adopted)
      XO_REQUIRES(mutex_);

  std::shared_ptr<const OntologyContext> context_;
  IndexBuildOptions options_;

  mutable Mutex mutex_;  ///< serializes writers; readers never take it
  /// Committed corpus value.
  Corpus corpus_ XO_GUARDED_BY(mutex_);
  /// Staged batch for the next Commit.
  std::vector<XmlDocument> pending_ XO_GUARDED_BY(mutex_);
  /// The serving snapshot. Not guarded: readers load it lock-free with
  /// acquire ordering; only Publish (under mutex_) stores it.
  std::atomic<std::shared_ptr<const IndexSnapshot>> published_;
};

}  // namespace xontorank

#endif  // XONTORANK_CORE_INDEX_WRITER_H_
