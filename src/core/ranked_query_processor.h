#ifndef XONTORANK_CORE_RANKED_QUERY_PROCESSOR_H_
#define XONTORANK_CORE_RANKED_QUERY_PROCESSOR_H_

#include <cstddef>
#include <vector>

#include "core/query_processor.h"
#include "core/xonto_dil.h"

namespace xontorank {

/// Statistics of one ranked execution (how much early termination saved).
struct RankedQueryStats {
  size_t documents_processed = 0;  ///< documents fully evaluated
  size_t documents_total = 0;      ///< distinct documents across the lists
  size_t postings_consumed = 0;    ///< ranked-frontier advances
  bool terminated_early = false;
};

/// Top-k evaluation over *ranked* inverted lists (XRANK's RDIL idea):
/// instead of merging every posting in Dewey order, postings are consumed
/// in descending score order and whole documents are evaluated exactly
/// (with the standard Eq. 1–4 merge) as they are first touched. A
/// threshold-algorithm bound decides when no unseen document can beat the
/// current k-th result:
///
///   best possible unseen result score ≤ Σ_w frontier_w
///
/// where frontier_w is the score of list w's next unconsumed posting (any
/// result's per-keyword component is a decayed NS of some posting, and
/// decay ≤ 1). When the k-th tentative result reaches that bound the scan
/// stops — typically after touching a small fraction of the corpus for
/// selective queries.
///
/// Produces exactly the same top-k as QueryProcessor::Execute (same scores,
/// same score-then-Dewey ordering); only the amount of work differs.
class RankedQueryProcessor {
 public:
  explicit RankedQueryProcessor(const ScoreOptions& options)
      : options_(options) {}

  /// Runs ranked evaluation; `top_k` must be ≥ 1 (the exhaustive processor
  /// is strictly better for "all results"). `stats`, if non-null, receives
  /// work counters.
  std::vector<QueryResult> Execute(const std::vector<const DilEntry*>& lists,
                                   size_t top_k,
                                   RankedQueryStats* stats = nullptr) const;

  /// DilListRef variant — the snapshot serving entry point. Flat lists get
  /// their ranked frontier straight from the columnar score array (O(1)
  /// random access, no posting structs touched); per-document exact
  /// evaluation runs over skip-table cursors. The DilEntry* overload
  /// delegates here.
  std::vector<QueryResult> Execute(const std::vector<DilListRef>& lists,
                                   size_t top_k,
                                   RankedQueryStats* stats = nullptr) const;

 private:
  ScoreOptions options_;
};

}  // namespace xontorank

#endif  // XONTORANK_CORE_RANKED_QUERY_PROCESSOR_H_
