#ifndef XONTORANK_CDA_CDA_DOCUMENT_H_
#define XONTORANK_CDA_CDA_DOCUMENT_H_

#include <string>
#include <vector>

#include "xml/xml_node.h"

namespace xontorank {

/// A coded value: the CDA idiom for referencing an ontology concept
/// (`<code code=".." codeSystem=".." displayName=".."/>`, Fig. 1).
struct CdaCodedValue {
  std::string code;
  std::string code_system;
  std::string code_system_name;
  std::string display_name;

  bool empty() const { return code.empty(); }
};

/// Document author (CDA header `<author>` block).
struct CdaAuthor {
  std::string id_extension;
  std::string given_name;
  std::string family_name;
  std::string suffix;
  std::string time;  ///< authoring timestamp, yyyymmdd
};

/// Record target (CDA header `<recordTarget>` block).
struct CdaPatient {
  std::string id_extension;
  std::string given_name;
  std::string family_name;
  std::string suffix;
  std::string gender_code;  ///< "M" / "F"
  std::string birth_time;   ///< yyyymmdd
  std::string provider_org_id;
};

/// A clinical-statement Observation entry: a coded observation with zero or
/// more coded values (Fig. 1 lines 37–47). Values may nest (line 45–46).
struct CdaObservation {
  CdaCodedValue code;
  std::vector<CdaCodedValue> values;
  /// Optional id of a narrative `<content>` chunk this observation points at
  /// through `<originalText><reference value="..."/>` (Fig. 1 line 40).
  std::string original_text_ref;
  std::string effective_time;
};

/// A SubstanceAdministration entry (Fig. 1 lines 49–56): free-text dosing
/// instructions plus the consumable's coded drug.
struct CdaSubstanceAdministration {
  std::string content_id;  ///< id of the `<content>` wrapping the drug name
  std::string drug_name;   ///< narrative drug name inside `<content>`
  std::string instructions;
  CdaCodedValue drug_code;
};

/// One row of a vital-signs narrative table (Fig. 1 lines 67–75).
struct CdaVitalSign {
  std::string name;
  std::string value;
};

/// One entry of a section: exactly one of the alternatives is populated.
struct CdaEntry {
  enum class Kind { kObservation, kSubstanceAdministration };
  Kind kind = Kind::kObservation;
  CdaObservation observation;
  CdaSubstanceAdministration substance_administration;
};

/// A document section (LOINC-coded), possibly nested (Fig. 1 lines 58–81).
struct CdaSection {
  CdaCodedValue code;  ///< LOINC section code
  std::string title;
  std::string narrative_text;          ///< free text under `<text>`
  std::vector<CdaVitalSign> vitals;    ///< rendered as a narrative table
  std::vector<CdaEntry> entries;
  std::vector<CdaSection> subsections;
};

/// An HL7 CDA R2 clinical document (header + structured body).
struct CdaDocument {
  std::string id_extension;
  std::string template_id = "2.16.840.1.113883.3.27.1776";
  CdaAuthor author;
  CdaPatient patient;
  std::vector<CdaSection> sections;
};

/// Renders a CdaDocument as an XML tree following the CDA R2 shape of
/// Fig. 1 (ClinicalDocument → header blocks → component/StructuredBody →
/// component/section → entry/...). Code nodes get their OntoRef populated so
/// the result is directly indexable without reparsing.
XmlDocument CdaToXml(const CdaDocument& doc, uint32_t doc_id);

}  // namespace xontorank

#endif  // XONTORANK_CDA_CDA_DOCUMENT_H_
