#include "cda/cda_validator.h"

#include <unordered_set>

namespace xontorank {

namespace {

void Add(std::vector<CdaDiagnostic>& diagnostics,
         CdaDiagnostic::Severity severity, std::string message,
         DeweyId where) {
  diagnostics.push_back({severity, std::move(message), std::move(where)});
}

}  // namespace

std::vector<CdaDiagnostic> ValidateCda(const XmlDocument& doc) {
  std::vector<CdaDiagnostic> diagnostics;
  const XmlNode* root = doc.root();
  if (root == nullptr) {
    Add(diagnostics, CdaDiagnostic::Severity::kError, "document has no root",
        DeweyId());
    return diagnostics;
  }
  DeweyId root_id = doc.DeweyIdOf(*root);

  if (root->tag() != "ClinicalDocument") {
    Add(diagnostics, CdaDiagnostic::Severity::kError,
        "root element is <" + root->tag() + ">, expected <ClinicalDocument>",
        root_id);
    return diagnostics;  // nothing below is meaningful
  }

  // Header blocks.
  for (const char* header : {"id", "author", "recordTarget"}) {
    if (root->FindChildElement(header) == nullptr) {
      Add(diagnostics, CdaDiagnostic::Severity::kWarning,
          std::string("missing header element <") + header + ">", root_id);
    }
  }

  // Body.
  const XmlNode* body = root->FindDescendantElement("StructuredBody");
  if (body == nullptr) {
    Add(diagnostics, CdaDiagnostic::Severity::kError,
        "missing <component>/<StructuredBody>", root_id);
  } else if (body->FindDescendantElement("section") == nullptr) {
    Add(diagnostics, CdaDiagnostic::Severity::kError,
        "<StructuredBody> contains no <section>", doc.DeweyIdOf(*body));
  }

  // Element-level checks over the whole tree.
  std::unordered_set<std::string> anchors;
  root->Visit([&](const XmlNode& node) {
    if (!node.is_element()) return;
    if (auto id = node.GetAttribute("ID"); id.has_value() && !id->empty()) {
      anchors.insert(std::string(*id));
    }
  });

  root->Visit([&](const XmlNode& node) {
    if (!node.is_element()) return;
    auto code = node.GetAttribute("code");
    auto system = node.GetAttribute("codeSystem");
    if (code.has_value() && !code->empty() &&
        (!system.has_value() || system->empty())) {
      Add(diagnostics, CdaDiagnostic::Severity::kError,
          "<" + node.tag() + "> has code=\"" + std::string(*code) +
              "\" without codeSystem (unresolvable code node)",
          doc.DeweyIdOf(node));
    }
    if (node.tag() == "section") {
      bool has_code = node.FindChildElement("code") != nullptr;
      bool has_title = node.FindChildElement("title") != nullptr;
      if (!has_code && !has_title) {
        Add(diagnostics, CdaDiagnostic::Severity::kWarning,
            "<section> has neither <code> nor <title>", doc.DeweyIdOf(node));
      }
    }
    if (node.tag() == "reference") {
      auto value = node.GetAttribute("value");
      if (value.has_value() && !value->empty()) {
        std::string target(*value);
        if (!target.empty() && target[0] == '#') target.erase(0, 1);
        if (anchors.count(target) == 0) {
          Add(diagnostics, CdaDiagnostic::Severity::kWarning,
              "<reference value=\"" + std::string(*value) +
                  "\"> does not resolve to any ID in the document",
              doc.DeweyIdOf(node));
        }
      }
    }
  });
  return diagnostics;
}

Status CheckCda(const XmlDocument& doc) {
  for (const CdaDiagnostic& diagnostic : ValidateCda(doc)) {
    if (diagnostic.is_error()) {
      return Status::FailedPrecondition(diagnostic.message + " (at " +
                                        diagnostic.where.ToString() + ")");
    }
  }
  return Status::OK();
}

}  // namespace xontorank
