#include "cda/cda_generator.h"

#include <algorithm>
#include <deque>

#include "common/random.h"
#include "common/string_util.h"
#include "onto/snomed_fragment.h"
#include "xml/xml_writer.h"

namespace xontorank {

namespace {

constexpr const char* kGivenNames[] = {
    "James", "Maria", "Robert", "Linda", "Michael", "Elena",  "David",
    "Sarah", "Carlos", "Emily", "Daniel", "Sofia",  "Kevin",  "Laura",
    "Brian", "Nadia",  "Jason", "Priya", "Andre",   "Grace"};
constexpr const char* kFamilyNames[] = {
    "Smith", "Garcia", "Johnson", "Chen",   "Williams", "Patel", "Brown",
    "Nguyen", "Jones", "Torres",  "Miller", "Kim",      "Davis", "Lopez",
    "Wilson", "Singh", "Moore",   "Ali",    "Taylor",   "Rivera"};

constexpr const char* kProblemPhrases[] = {
    "Patient presented with", "Admitted for evaluation of",
    "History significant for", "Follow-up visit for",
    "Readmitted with worsening", "Newly diagnosed"};

constexpr const char* kCourseSentences[] = {
    "Clinical course was uneventful and the patient remained stable.",
    "Symptoms improved on the current regimen.",
    "Family counseled regarding findings and follow-up plan.",
    "Repeat evaluation scheduled in outpatient clinic.",
    "Oxygen saturation remained within normal limits overnight.",
    "No acute events during this hospitalization."};

/// Descendant closure of the concept with the given preferred term; empty if
/// the term is absent from the ontology.
std::vector<ConceptId> DescendantsOfTerm(const Ontology& onto,
                                         std::string_view term) {
  ConceptId root = onto.FindByPreferredTerm(term);
  std::vector<ConceptId> out;
  if (root == kInvalidConcept) return out;
  std::vector<bool> seen(onto.concept_count(), false);
  std::deque<ConceptId> frontier{root};
  seen[root] = true;
  while (!frontier.empty()) {
    ConceptId cur = frontier.front();
    frontier.pop_front();
    out.push_back(cur);
    for (ConceptId child : onto.Children(cur)) {
      if (!seen[child]) {
        seen[child] = true;
        frontier.push_back(child);
      }
    }
  }
  return out;
}

/// Leaf-biased filter: drop the first element (the category root itself).
std::vector<ConceptId> WithoutRoot(std::vector<ConceptId> ids) {
  if (!ids.empty()) ids.erase(ids.begin());
  return ids;
}

/// Shorthand cast for StringPrintf's %llu arguments.
unsigned long long Llu(uint64_t v) { return v; }

size_t PoissonLike(Rng& rng, size_t mean) {
  // Mean +- ~sqrt(mean) without the full Knuth loop: sum of two uniforms.
  if (mean == 0) return 0;
  size_t lo = mean - std::min(mean, mean / 2 + 1);
  size_t hi = mean + mean / 2 + 1;
  return static_cast<size_t>(rng.NextInt(static_cast<int64_t>(lo),
                                         static_cast<int64_t>(hi)));
}

}  // namespace

CdaGenerator::CdaGenerator(const Ontology& ontology,
                           CdaGeneratorOptions options)
    : ontology_(&ontology), options_(options) {
  disorders_ = WithoutRoot(DescendantsOfTerm(ontology, "Clinical finding"));
  drugs_ = WithoutRoot(
      DescendantsOfTerm(ontology, "Pharmaceutical / biologic product"));
  procedures_ = WithoutRoot(DescendantsOfTerm(ontology, "Procedure"));

  // Synthetic ontologies have no curated category roots: partition all
  // concepts deterministically instead so the generator still works.
  if (disorders_.empty()) {
    for (ConceptId c = 0; c < ontology.concept_count(); ++c) {
      switch (c % 3) {
        case 0: disorders_.push_back(c); break;
        case 1: drugs_.push_back(c); break;
        default: procedures_.push_back(c); break;
      }
    }
  }

  // A fixed Zipf popularity ranking: shuffle once with the corpus seed so
  // rank order is stable across documents.
  Rng rank_rng(options_.seed ^ 0x5eedULL);
  rank_rng.Shuffle(disorders_);

  // Specialty focus: descendants of the focus category (e.g. "Disease of
  // heart" for the paper's cardiac clinic), same stable popularity order.
  if (!options_.focus_category.empty()) {
    focus_disorders_ =
        WithoutRoot(DescendantsOfTerm(ontology, options_.focus_category));
    rank_rng.Shuffle(focus_disorders_);
  }

  if (auto id = ontology.FindRelationType(kRelMayTreat)) {
    may_treat_ = *id;
    has_may_treat_ = true;
  }
}

ConceptId CdaGenerator::PickDisorder(Rng& rng) const {
  if (!focus_disorders_.empty() && rng.NextBool(options_.focus_probability)) {
    return focus_disorders_[rng.NextZipf(focus_disorders_.size(),
                                         options_.zipf_exponent)];
  }
  return disorders_[rng.NextZipf(disorders_.size(), options_.zipf_exponent)];
}

ConceptId CdaGenerator::PickDrugFor(ConceptId disorder, Rng& rng) const {
  if (has_may_treat_) {
    // Walk up the is-a chain looking for a drug with a may_treat edge into
    // the disorder (or an ancestor), so medication lists stay clinically
    // coherent with the problem list.
    ConceptId cursor = disorder;
    for (int hops = 0; hops < 4; ++hops) {
      std::vector<ConceptId> treaters;
      for (const ConceptRelationship& rel :
           ontology_->InRelationships(cursor)) {
        if (rel.type == may_treat_) treaters.push_back(rel.source);
      }
      if (!treaters.empty()) return rng.Choose(treaters);
      const std::vector<ConceptId>& parents = ontology_->Parents(cursor);
      if (parents.empty()) break;
      cursor = parents[rng.NextBelow(parents.size())];
    }
  }
  return drugs_.empty() ? disorder : rng.Choose(drugs_);
}

ConceptId CdaGenerator::PickProcedureFor(ConceptId disorder, Rng& rng) const {
  if (has_may_treat_) {
    for (const ConceptRelationship& rel :
         ontology_->InRelationships(disorder)) {
      if (rel.type != may_treat_) continue;
      // Procedures also carry may_treat edges; prefer one if present.
      if (std::find(procedures_.begin(), procedures_.end(), rel.source) !=
          procedures_.end()) {
        return rel.source;
      }
    }
  }
  return procedures_.empty() ? disorder : rng.Choose(procedures_);
}

CdaCodedValue CdaGenerator::CodedValueFor(ConceptId concept_id) const {
  const Concept& c = ontology_->GetConcept(concept_id);
  return CdaCodedValue{c.code, ontology_->system_id(), ontology_->name(),
                       c.preferred_term};
}

CdaDocument CdaGenerator::GenerateDocument(uint32_t index) const {
  Rng rng(options_.seed * 0x9e3779b97f4a7c15ULL + index);
  CdaDocument doc;
  doc.id_extension = StringPrintf("c%05u", index);

  doc.author.id_extension =
      StringPrintf("kp%05u", static_cast<uint32_t>(rng.NextBelow(40)));
  doc.author.given_name = kGivenNames[rng.NextBelow(std::size(kGivenNames))];
  doc.author.family_name = kFamilyNames[rng.NextBelow(std::size(kFamilyNames))];
  doc.author.suffix = "MD";
  doc.author.time = StringPrintf("200%llu%02llu%02llu",
                                 Llu(rng.NextBelow(9)),
                                 Llu(1 + rng.NextBelow(12)),
                                 Llu(1 + rng.NextBelow(28)));

  doc.patient.id_extension = StringPrintf("%05u", 10000 + index);
  doc.patient.given_name = kGivenNames[rng.NextBelow(std::size(kGivenNames))];
  doc.patient.family_name =
      kFamilyNames[rng.NextBelow(std::size(kFamilyNames))];
  doc.patient.gender_code = rng.NextBool(0.5) ? "M" : "F";
  doc.patient.birth_time = StringPrintf("19%02llu%02llu%02llu",
                                        Llu(85 + rng.NextBelow(15)),
                                        Llu(1 + rng.NextBelow(12)),
                                        Llu(1 + rng.NextBelow(28)));
  doc.patient.provider_org_id =
      StringPrintf("M%03u", static_cast<uint32_t>(rng.NextBelow(20)));

  size_t num_encounters =
      std::max<size_t>(1, PoissonLike(rng, options_.mean_encounters));
  for (size_t e = 0; e < num_encounters; ++e) {
    CdaSection encounter;
    encounter.code = CdaCodedValue{"34133-9", kLoincSystemId, "LOINC",
                                   "Summarization of episode note"};
    encounter.title = StringPrintf("Hospitalization %zu", e + 1);

    // --- Problems subsection ---
    CdaSection problems;
    problems.code = CdaCodedValue{"11450-4", kLoincSystemId, "LOINC",
                                  "Problem list"};
    problems.title = "Problems";
    std::vector<ConceptId> encounter_disorders;
    size_t num_problems =
        std::max<size_t>(1, PoissonLike(rng, options_.mean_problems));
    std::string narrative;
    for (size_t p = 0; p < num_problems; ++p) {
      ConceptId disorder = PickDisorder(rng);
      encounter_disorders.push_back(disorder);
      CdaEntry entry;
      entry.kind = CdaEntry::Kind::kObservation;
      entry.observation.code = CdaCodedValue{
          "404684003", ontology_->system_id(), ontology_->name(), "Finding"};
      entry.observation.values.push_back(CodedValueFor(disorder));
      // Occasionally nest an associated finding (Fig. 1 lines 45-46 style).
      if (rng.NextBool(0.25)) {
        entry.observation.values.push_back(CodedValueFor(PickDisorder(rng)));
      }
      problems.entries.push_back(std::move(entry));
      narrative += kProblemPhrases[rng.NextBelow(std::size(kProblemPhrases))];
      narrative.push_back(' ');
      narrative += ontology_->GetConcept(disorder).preferred_term;
      narrative += ". ";
    }
    narrative += kCourseSentences[rng.NextBelow(std::size(kCourseSentences))];
    problems.narrative_text = std::move(narrative);

    // --- Medications subsection ---
    CdaSection medications;
    medications.code = CdaCodedValue{"10160-0", kLoincSystemId, "LOINC",
                                     "History of medication use"};
    medications.title = "Medications";
    size_t num_meds =
        std::max<size_t>(1, PoissonLike(rng, options_.mean_medications));
    for (size_t m = 0; m < num_meds; ++m) {
      ConceptId disorder =
          encounter_disorders[rng.NextBelow(encounter_disorders.size())];
      ConceptId drug = PickDrugFor(disorder, rng);
      CdaEntry entry;
      entry.kind = CdaEntry::Kind::kSubstanceAdministration;
      entry.substance_administration.content_id =
          StringPrintf("m%zu_%zu", e, m);
      entry.substance_administration.drug_name =
          ontology_->GetConcept(drug).preferred_term;
      entry.substance_administration.instructions = StringPrintf(
          " %llu mg every %llu hours. %s",
          Llu(5 * (1 + rng.NextBelow(20))),
          Llu(4 * (1 + rng.NextBelow(5))),
          rng.NextBool(0.3) ? "Hold if systolic pressure is below 90."
                            : "Continue until follow-up.");
      entry.substance_administration.drug_code = CodedValueFor(drug);
      medications.entries.push_back(std::move(entry));
    }

    // --- Procedures subsection ---
    CdaSection procedures;
    procedures.code = CdaCodedValue{"47519-4", kLoincSystemId, "LOINC",
                                    "History of procedures"};
    procedures.title = "Procedures";
    size_t num_procs = PoissonLike(rng, options_.mean_procedures);
    for (size_t p = 0; p < num_procs; ++p) {
      ConceptId disorder =
          encounter_disorders[rng.NextBelow(encounter_disorders.size())];
      ConceptId procedure = PickProcedureFor(disorder, rng);
      CdaEntry entry;
      entry.kind = CdaEntry::Kind::kObservation;
      entry.observation.code = CodedValueFor(procedure);
      entry.observation.effective_time = doc.author.time;
      procedures.entries.push_back(std::move(entry));
    }

    // --- Vital signs subsection (narrative table, Fig. 1 lines 62-81) ---
    CdaSection vitals;
    vitals.code = CdaCodedValue{"8716-3", kLoincSystemId, "LOINC",
                                "Vital signs"};
    vitals.title = "Vital Signs";
    vitals.vitals = {
        {"Temperature", StringPrintf("%.1f C", 36.0 + rng.NextDouble() * 3.0)},
        {"Pulse", StringPrintf("%llu / minute",
                               Llu(60 + rng.NextBelow(90)))},
        {"Respiratory rate",
         StringPrintf("%llu / minute", Llu(12 + rng.NextBelow(28)))},
        {"Blood pressure",
         StringPrintf("%llu/%llu mmHg", Llu(85 + rng.NextBelow(50)),
                      Llu(45 + rng.NextBelow(40)))},
    };
    CdaEntry height;
    height.kind = CdaEntry::Kind::kObservation;
    height.observation.code = CdaCodedValue{"50373000", ontology_->system_id(),
                                            ontology_->name(), "Body height"};
    height.observation.effective_time = doc.author.time;
    vitals.entries.push_back(std::move(height));
    if (options_.loinc_vital_codes) {
      static constexpr struct {
        const char* code;
        const char* display;
      } kLoincVitals[] = {
          {"8867-4", "Heart rate measurement"},
          {"8310-5", "Body temperature measurement"},
          {"9279-1", "Respiratory rate measurement"},
      };
      for (const auto& vital_code : kLoincVitals) {
        CdaEntry coded;
        coded.kind = CdaEntry::Kind::kObservation;
        coded.observation.code = CdaCodedValue{vital_code.code, kLoincSystemId,
                                               "LOINC", vital_code.display};
        coded.observation.effective_time = doc.author.time;
        vitals.entries.push_back(std::move(coded));
      }
    }

    encounter.subsections.push_back(std::move(problems));
    encounter.subsections.push_back(std::move(medications));
    if (!procedures.entries.empty()) {
      encounter.subsections.push_back(std::move(procedures));
    }
    encounter.subsections.push_back(std::move(vitals));
    doc.sections.push_back(std::move(encounter));
  }
  return doc;
}

std::vector<XmlDocument> CdaGenerator::GenerateCorpus() const {
  std::vector<XmlDocument> corpus;
  corpus.reserve(options_.num_documents);
  for (uint32_t i = 0; i < options_.num_documents; ++i) {
    corpus.push_back(CdaToXml(GenerateDocument(i), i));
  }
  return corpus;
}

CdaCorpusStats CdaGenerator::ComputeStats(const Corpus& corpus) {
  CdaCorpusStats stats;
  stats.documents = corpus.size();
  for (const XmlDocument& doc : corpus) {
    stats.total_elements += doc.NodeCount();
    stats.total_bytes += WriteXml(doc).size();
    doc.root()->Visit([&stats](const XmlNode& node) {
      if (node.onto_ref().has_value()) ++stats.total_onto_refs;
    });
  }
  return stats;
}

}  // namespace xontorank
