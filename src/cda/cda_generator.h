#ifndef XONTORANK_CDA_CDA_GENERATOR_H_
#define XONTORANK_CDA_CDA_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "cda/cda_document.h"
#include "onto/ontology.h"
#include "xml/corpus.h"
#include "xml/xml_node.h"

namespace xontorank {

/// Parameters of the synthetic CDA corpus generator.
struct CdaGeneratorOptions {
  /// Number of patient documents (the paper's corpus: one CDA document per
  /// patient, conglomerating all hospitalization entries).
  size_t num_documents = 50;

  /// PRNG seed; the corpus is a pure function of (ontology, options).
  uint64_t seed = 7;

  /// Mean number of hospitalization encounters per patient (each becomes a
  /// top-level section with Problems / Medications / Procedures / Vital
  /// Signs subsections). Defaults target the paper's corpus statistics of
  /// ~47 KB and ~151 ontological references per document.
  size_t mean_encounters = 4;
  /// Mean problems (coded Observations) per encounter.
  size_t mean_problems = 5;
  /// Mean medications (SubstanceAdministrations) per encounter.
  size_t mean_medications = 4;
  /// Mean procedures per encounter.
  size_t mean_procedures = 2;

  /// Zipf exponent controlling disorder popularity skew across the corpus
  /// (common disorders recur in many patients, like a real clinic).
  double zipf_exponent = 1.3;

  /// Specialty focus: preferred term of a finding category whose descendant
  /// disorders dominate the corpus (the paper's corpus comes from a
  /// children's *cardiac* clinic). Empty or unresolvable disables focusing.
  std::string focus_category = "Disease of heart";
  /// Probability that a problem is drawn from the focus category (the rest
  /// come from the full clinical-finding pool — comorbidities).
  double focus_probability = 0.7;

  /// If true, each vital-signs section additionally carries LOINC-coded
  /// observation entries (heart rate 8867-4, body temperature 8310-5,
  /// respiratory rate 9279-1), exercising the multi-ontology path when a
  /// LOINC fragment is registered. Off by default to keep the experiment
  /// corpus single-system like the paper's.
  bool loinc_vital_codes = false;
};

/// Summary statistics of a generated corpus, mirroring the numbers the
/// paper reports for its hospital corpus (§VII).
struct CdaCorpusStats {
  size_t documents = 0;
  size_t total_elements = 0;
  size_t total_onto_refs = 0;
  size_t total_bytes = 0;

  double AvgElements() const {
    return documents == 0 ? 0.0
                          : static_cast<double>(total_elements) /
                                static_cast<double>(documents);
  }
  double AvgOntoRefs() const {
    return documents == 0 ? 0.0
                          : static_cast<double>(total_onto_refs) /
                                static_cast<double>(documents);
  }
  double AvgKilobytes() const {
    return documents == 0 ? 0.0
                          : static_cast<double>(total_bytes) / 1024.0 /
                                static_cast<double>(documents);
  }
};

/// Deterministic generator of CDA-shaped patient records over an ontology.
///
/// Substitutes for the anonymized EMR database of the paper's children's
/// cardiac clinic (see DESIGN.md §1): each document is one patient; each
/// encounter contributes coded problem Observations (disorders drawn
/// Zipf-skewed from the ontology's clinical findings), coherent medication
/// entries (drugs whose `may_treat` relationships reach the patient's
/// problems, when the ontology defines any), procedures, a vital-signs
/// table, and narrative text mentioning the coded concepts' display names.
class CdaGenerator {
 public:
  /// `ontology` must outlive the generator.
  CdaGenerator(const Ontology& ontology, CdaGeneratorOptions options);

  /// Generates patient document number `index` (deterministic per index).
  CdaDocument GenerateDocument(uint32_t index) const;

  /// Generates the full corpus as XML trees; doc ids are 0..n-1.
  std::vector<XmlDocument> GenerateCorpus() const;

  /// Serializes every document and accumulates corpus statistics.
  static CdaCorpusStats ComputeStats(const Corpus& corpus);

 private:
  ConceptId PickDisorder(class Rng& rng) const;
  ConceptId PickDrugFor(ConceptId disorder, class Rng& rng) const;
  ConceptId PickProcedureFor(ConceptId disorder, class Rng& rng) const;
  CdaCodedValue CodedValueFor(ConceptId concept_id) const;

  const Ontology* ontology_;
  CdaGeneratorOptions options_;
  std::vector<ConceptId> disorders_;   // popularity-ranked clinical findings
  std::vector<ConceptId> focus_disorders_;  // popularity-ranked focus subset
  std::vector<ConceptId> drugs_;
  std::vector<ConceptId> procedures_;
  RelationTypeId may_treat_ = 0;
  bool has_may_treat_ = false;
};

}  // namespace xontorank

#endif  // XONTORANK_CDA_CDA_GENERATOR_H_
