#include "cda/cda_document.h"

#include "xml/xml_parser.h"

namespace xontorank {

namespace {

/// Emits a coded element (`<tag code=... codeSystem=... displayName=.../>`)
/// and tags it with its OntoRef.
XmlNode* AddCodedElement(XmlNode* parent, const std::string& tag,
                         const CdaCodedValue& value,
                         const char* value_type = nullptr) {
  XmlNode* elem = parent->AddElementChild(tag);
  if (value_type != nullptr) elem->AddAttribute("xsi:type", value_type);
  elem->AddAttribute("code", value.code);
  elem->AddAttribute("codeSystem", value.code_system);
  if (!value.code_system_name.empty()) {
    elem->AddAttribute("codeSystemName", value.code_system_name);
  }
  if (!value.display_name.empty()) {
    elem->AddAttribute("displayName", value.display_name);
  }
  if (auto ref = ExtractOntoRef(*elem)) elem->set_onto_ref(*ref);
  return elem;
}

void AddName(XmlNode* parent, const std::string& given,
             const std::string& family, const std::string& suffix) {
  XmlNode* name = parent->AddElementChild("name");
  name->AddElementChild("given")->AddTextChild(given);
  name->AddElementChild("family")->AddTextChild(family);
  if (!suffix.empty()) name->AddElementChild("suffix")->AddTextChild(suffix);
}

void AddObservation(XmlNode* entry, const CdaObservation& obs) {
  XmlNode* observation = entry->AddElementChild("Observation");
  AddCodedElement(observation, "code", obs.code);
  if (!obs.effective_time.empty()) {
    observation->AddElementChild("effectiveTime")
        ->AddAttribute("value", obs.effective_time);
  }
  XmlNode* nest_under = observation;
  for (const CdaCodedValue& value : obs.values) {
    // Values nest like Fig. 1 lines 45-46: each subsequent value goes inside
    // the previous one.
    XmlNode* value_elem = AddCodedElement(nest_under, "value", value, "CD");
    if (nest_under == observation && !obs.original_text_ref.empty()) {
      XmlNode* original = value_elem->AddElementChild("originalText");
      original->AddElementChild("reference")
          ->AddAttribute("value", obs.original_text_ref);
    }
    nest_under = value_elem;
  }
}

void AddSubstanceAdministration(XmlNode* entry,
                                const CdaSubstanceAdministration& sub) {
  XmlNode* administration = entry->AddElementChild("SubstanceAdministration");
  XmlNode* text = administration->AddElementChild("text");
  XmlNode* content = text->AddElementChild("content");
  if (!sub.content_id.empty()) content->AddAttribute("ID", sub.content_id);
  content->AddTextChild(sub.drug_name);
  if (!sub.instructions.empty()) text->AddTextChild(sub.instructions);
  XmlNode* consumable = administration->AddElementChild("consumable");
  XmlNode* product = consumable->AddElementChild("manufacturedProduct");
  XmlNode* drug = product->AddElementChild("manufacturedLabeledDrug");
  AddCodedElement(drug, "code", sub.drug_code);
}

void AddSection(XmlNode* parent, const CdaSection& section) {
  XmlNode* component = parent->AddElementChild("component");
  XmlNode* sec = component->AddElementChild("section");
  if (!section.code.empty()) AddCodedElement(sec, "code", section.code);
  if (!section.title.empty()) {
    sec->AddElementChild("title")->AddTextChild(section.title);
  }
  if (!section.narrative_text.empty() || !section.vitals.empty()) {
    XmlNode* text = sec->AddElementChild("text");
    if (!section.narrative_text.empty()) {
      text->AddTextChild(section.narrative_text);
    }
    if (!section.vitals.empty()) {
      XmlNode* table = text->AddElementChild("table");
      for (const CdaVitalSign& vital : section.vitals) {
        XmlNode* tr = table->AddElementChild("tr");
        tr->AddElementChild("th")->AddTextChild(vital.name);
        tr->AddElementChild("td")->AddTextChild(vital.value);
      }
    }
  }
  for (const CdaEntry& entry : section.entries) {
    XmlNode* entry_elem = sec->AddElementChild("entry");
    switch (entry.kind) {
      case CdaEntry::Kind::kObservation:
        AddObservation(entry_elem, entry.observation);
        break;
      case CdaEntry::Kind::kSubstanceAdministration:
        AddSubstanceAdministration(entry_elem, entry.substance_administration);
        break;
    }
  }
  for (const CdaSection& sub : section.subsections) {
    AddSection(sec, sub);
  }
}

}  // namespace

XmlDocument CdaToXml(const CdaDocument& doc, uint32_t doc_id) {
  auto root = XmlNode::MakeElement("ClinicalDocument");
  root->AddAttribute("xmlns", "urn:hl7-org:v3");
  root->AddAttribute("xmlns:voc", "urn:hl7-org:v3/voc");
  root->AddAttribute("templateId", doc.template_id);

  XmlNode* id = root->AddElementChild("id");
  id->AddAttribute("extension", doc.id_extension);
  id->AddAttribute("root", "2.16.840.1.113883.3.933");

  // Header: author.
  XmlNode* author = root->AddElementChild("author");
  author->AddElementChild("time")->AddAttribute("value", doc.author.time);
  XmlNode* assigned = author->AddElementChild("assignedAuthor");
  XmlNode* author_id = assigned->AddElementChild("id");
  author_id->AddAttribute("extension", doc.author.id_extension);
  author_id->AddAttribute("root", "2.16.840.1.113883.19.5");
  XmlNode* person = assigned->AddElementChild("assignedPerson");
  AddName(person, doc.author.given_name, doc.author.family_name,
          doc.author.suffix);

  // Header: record target (patient).
  XmlNode* record_target = root->AddElementChild("recordTarget");
  XmlNode* patient_role = record_target->AddElementChild("patientRole");
  XmlNode* patient_id = patient_role->AddElementChild("id");
  patient_id->AddAttribute("extension", doc.patient.id_extension);
  patient_id->AddAttribute("root", "2.16.840.1.113883.19.5");
  XmlNode* patient = patient_role->AddElementChild("patientPatient");
  AddName(patient, doc.patient.given_name, doc.patient.family_name,
          doc.patient.suffix);
  XmlNode* gender = patient->AddElementChild("administrativeGenderCode");
  gender->AddAttribute("code", doc.patient.gender_code);
  gender->AddAttribute("codeSystem", "2.16.840.1.113883.5.1");
  patient->AddElementChild("birthTime")
      ->AddAttribute("value", doc.patient.birth_time);
  XmlNode* provider = patient_role->AddElementChild("providerOrganization");
  XmlNode* provider_id = provider->AddElementChild("id");
  provider_id->AddAttribute("extension", doc.patient.provider_org_id);
  provider_id->AddAttribute("root", "2.16.840.1.113883.19.5");

  // Body.
  XmlNode* component = root->AddElementChild("component");
  XmlNode* body = component->AddElementChild("StructuredBody");
  for (const CdaSection& section : doc.sections) {
    AddSection(body, section);
  }

  return XmlDocument(std::move(root), doc_id);
}

}  // namespace xontorank
