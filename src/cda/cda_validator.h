#ifndef XONTORANK_CDA_CDA_VALIDATOR_H_
#define XONTORANK_CDA_CDA_VALIDATOR_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "xml/xml_node.h"

namespace xontorank {

/// One structural finding of the CDA validator.
struct CdaDiagnostic {
  enum class Severity { kError, kWarning };
  Severity severity;
  std::string message;
  DeweyId where;  ///< offending element (document root for document-level)

  bool is_error() const { return severity == Severity::kError; }
};

/// Structural validation of a CDA R2-shaped document against the subset of
/// the specification this system relies on (Fig. 1 / Fig. 3 shape).
///
/// Errors (indexing would be degraded or misleading):
///  - root element is not `ClinicalDocument`
///  - missing `component/StructuredBody`
///  - a `StructuredBody` without any `section`
///  - a coded element carrying `code` without `codeSystem` (the pair is
///    what makes a code node resolvable, §III)
///
/// Warnings (tolerated but worth surfacing):
///  - missing header blocks (`id`, `author`, `recordTarget`)
///  - a `section` without `code` and without `title` (invisible to both
///    textual and ontological matching)
///  - an `originalText/reference` whose target `ID` does not exist in the
///    document (dangling narrative link)
std::vector<CdaDiagnostic> ValidateCda(const XmlDocument& doc);

/// OK iff ValidateCda reports no errors; the Status message carries the
/// first error otherwise.
[[nodiscard]] Status CheckCda(const XmlDocument& doc);

}  // namespace xontorank

#endif  // XONTORANK_CDA_CDA_VALIDATOR_H_
