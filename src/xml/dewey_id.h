#ifndef XONTORANK_XML_DEWEY_ID_H_
#define XONTORANK_XML_DEWEY_ID_H_

#include <cstdint>
#include <string>
#include <vector>

namespace xontorank {

/// Dewey identifier of an XML node (XRANK §V / Fig. 9).
///
/// The first component is the document id; subsequent components are
/// 0-based child ordinals along the path from the document root to the node.
/// The document root element therefore has the Dewey id `[doc]`, its second
/// child `[doc, 1]`, and so on. Dewey ids order postings in document order,
/// decide ancestor/descendant containment in O(depth), and give containment
/// distance for the decayed score propagation of Eq. 2.
class DeweyId {
 public:
  DeweyId() = default;

  /// Constructs from explicit components; `components[0]` is the doc id.
  explicit DeweyId(std::vector<uint32_t> components)
      : components_(std::move(components)) {}

  /// Convenience: document root id for document `doc_id`.
  static DeweyId Root(uint32_t doc_id) { return DeweyId({doc_id}); }

  /// The id of this node's `ordinal`-th child.
  DeweyId Child(uint32_t ordinal) const;

  /// The id of this node's parent. Must not be a bare document id.
  DeweyId Parent() const;

  bool empty() const { return components_.empty(); }
  size_t size() const { return components_.size(); }
  uint32_t operator[](size_t i) const { return components_[i]; }
  const std::vector<uint32_t>& components() const { return components_; }

  /// Document id (first component). Requires non-empty.
  uint32_t doc_id() const { return components_.front(); }

  /// Depth below the document root (root element itself has depth 0).
  size_t depth() const { return components_.empty() ? 0 : components_.size() - 1; }

  /// True if `this` is `other` or an ancestor of `other` (prefix test).
  bool IsAncestorOrSelfOf(const DeweyId& other) const;

  /// True if `this` is a strict ancestor of `other`.
  bool IsStrictAncestorOf(const DeweyId& other) const;

  /// Number of shared leading components with `other` (0 if different docs).
  size_t CommonPrefixLength(const DeweyId& other) const;

  /// Longest common ancestor of two ids in the same document. If the ids
  /// belong to different documents the result is empty.
  DeweyId LongestCommonAncestor(const DeweyId& other) const;

  /// Number of containment edges between `this` (an ancestor-or-self) and
  /// `descendant`. Requires IsAncestorOrSelfOf(descendant).
  size_t DistanceTo(const DeweyId& descendant) const;

  /// Document-order comparison; ancestors sort before descendants.
  bool operator<(const DeweyId& other) const {
    return components_ < other.components_;
  }
  bool operator==(const DeweyId& other) const {
    return components_ == other.components_;
  }
  bool operator!=(const DeweyId& other) const { return !(*this == other); }

  /// "1.0.2.4" rendering (Fig. 9 style).
  std::string ToString() const;

 private:
  std::vector<uint32_t> components_;
};

}  // namespace xontorank

#endif  // XONTORANK_XML_DEWEY_ID_H_
