#ifndef XONTORANK_XML_XML_NODE_H_
#define XONTORANK_XML_XML_NODE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "xml/dewey_id.h"

namespace xontorank {

/// A single XML attribute; order within the owning element is preserved.
struct XmlAttribute {
  std::string name;
  std::string value;
};

/// Ontological reference carried by a *code node* (§III): the id of the
/// referenced ontological system (e.g. SNOMED's OID) and the concept code
/// within that system.
struct OntoRef {
  std::string system;  ///< codeSystem attribute value, e.g. "2.16.840.1.113883.6.96"
  std::string code;    ///< concept code within the system, e.g. "195967001"

  bool operator==(const OntoRef& other) const {
    return system == other.system && code == other.code;
  }
};

/// Node of the XML document tree. Two kinds exist: elements (tag, attributes,
/// children) and text nodes (character data only). The tree is an ownership
/// tree: each node owns its children via unique_ptr; parent pointers are
/// non-owning back-references.
class XmlNode {
 public:
  enum class Kind { kElement, kText };

  /// Creates an element node with the given tag.
  static std::unique_ptr<XmlNode> MakeElement(std::string tag);

  /// Creates a text node with the given character data.
  static std::unique_ptr<XmlNode> MakeText(std::string text);

  XmlNode(const XmlNode&) = delete;
  XmlNode& operator=(const XmlNode&) = delete;

  Kind kind() const { return kind_; }
  bool is_element() const { return kind_ == Kind::kElement; }
  bool is_text() const { return kind_ == Kind::kText; }

  /// Element tag name; empty for text nodes.
  const std::string& tag() const { return tag_; }

  /// Character data; empty for element nodes.
  const std::string& text() const { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }

  const std::vector<XmlAttribute>& attributes() const { return attributes_; }

  /// Appends an attribute (duplicate names are not rejected here; the parser
  /// rejects them with a ParseError).
  void AddAttribute(std::string name, std::string value);

  /// Value of attribute `name`, or nullopt if absent.
  std::optional<std::string_view> GetAttribute(std::string_view name) const;

  /// Appends `child`, fixing up its parent pointer; returns the raw pointer.
  XmlNode* AddChild(std::unique_ptr<XmlNode> child);

  /// Convenience: appends a new element child with the given tag.
  XmlNode* AddElementChild(std::string tag);

  /// Convenience: appends a text node child.
  XmlNode* AddTextChild(std::string text);

  const std::vector<std::unique_ptr<XmlNode>>& children() const {
    return children_;
  }
  XmlNode* parent() const { return parent_; }

  /// Index of this node among its parent's children (0 for a root).
  uint32_t ordinal() const { return ordinal_; }

  /// First element child with tag `tag`, or nullptr.
  XmlNode* FindChildElement(std::string_view tag) const;

  /// Depth-first search for the first descendant element with tag `tag`
  /// (excluding `this`), or nullptr.
  XmlNode* FindDescendantElement(std::string_view tag) const;

  /// Concatenation of all text-node data in this subtree, in document order.
  std::string InnerText() const;

  /// Number of nodes (elements + text) in this subtree including `this`.
  size_t SubtreeSize() const;

  /// Visits every node in this subtree (preorder), including `this`.
  void Visit(const std::function<void(const XmlNode&)>& fn) const;
  void VisitMutable(const std::function<void(XmlNode&)>& fn);

  /// The node's ontological reference if it is a code node (see
  /// `ExtractOntoRef` in xml_parser.h for the CDA convention), else nullopt.
  const std::optional<OntoRef>& onto_ref() const { return onto_ref_; }
  void set_onto_ref(OntoRef ref) { onto_ref_ = std::move(ref); }

 private:
  explicit XmlNode(Kind kind) : kind_(kind) {}

  friend class XmlDocument;

  Kind kind_;
  std::string tag_;
  std::string text_;
  std::vector<XmlAttribute> attributes_;
  std::vector<std::unique_ptr<XmlNode>> children_;
  XmlNode* parent_ = nullptr;
  uint32_t ordinal_ = 0;
  std::optional<OntoRef> onto_ref_;
};

/// A parsed XML document: owns the root element and assigns Dewey ids.
class XmlDocument {
 public:
  XmlDocument() = default;
  explicit XmlDocument(std::unique_ptr<XmlNode> root, uint32_t doc_id = 0)
      : root_(std::move(root)), doc_id_(doc_id) {}

  XmlDocument(XmlDocument&&) noexcept = default;
  XmlDocument& operator=(XmlDocument&&) noexcept = default;

  const XmlNode* root() const { return root_.get(); }
  XmlNode* mutable_root() { return root_.get(); }

  uint32_t doc_id() const { return doc_id_; }
  void set_doc_id(uint32_t id) { doc_id_ = id; }

  /// Total node count (elements + text nodes).
  size_t NodeCount() const { return root_ ? root_->SubtreeSize() : 0; }

  /// Dewey id of `node`, which must belong to this document. The id is
  /// computed by walking parent pointers; O(depth).
  DeweyId DeweyIdOf(const XmlNode& node) const;

  /// Resolves a Dewey id back to the node it denotes, or nullptr if the id
  /// does not address a node of this document.
  const XmlNode* Resolve(const DeweyId& id) const;

 private:
  std::unique_ptr<XmlNode> root_;
  uint32_t doc_id_ = 0;
};

}  // namespace xontorank

#endif  // XONTORANK_XML_XML_NODE_H_
