#include "xml/dewey_id.h"

#include <algorithm>

#include "common/check.h"

namespace xontorank {

DeweyId DeweyId::Child(uint32_t ordinal) const {
  std::vector<uint32_t> comps = components_;
  comps.push_back(ordinal);
  return DeweyId(std::move(comps));
}

DeweyId DeweyId::Parent() const {
  XO_CHECK(components_.size() > 1 && "document root has no parent");
  std::vector<uint32_t> comps(components_.begin(), components_.end() - 1);
  return DeweyId(std::move(comps));
}

bool DeweyId::IsAncestorOrSelfOf(const DeweyId& other) const {
  if (components_.size() > other.components_.size()) return false;
  return std::equal(components_.begin(), components_.end(),
                    other.components_.begin());
}

bool DeweyId::IsStrictAncestorOf(const DeweyId& other) const {
  return components_.size() < other.components_.size() &&
         IsAncestorOrSelfOf(other);
}

size_t DeweyId::CommonPrefixLength(const DeweyId& other) const {
  size_t limit = std::min(components_.size(), other.components_.size());
  size_t i = 0;
  while (i < limit && components_[i] == other.components_[i]) ++i;
  return i;
}

DeweyId DeweyId::LongestCommonAncestor(const DeweyId& other) const {
  size_t n = CommonPrefixLength(other);
  if (n == 0) return DeweyId();
  return DeweyId(
      std::vector<uint32_t>(components_.begin(), components_.begin() + n));
}

size_t DeweyId::DistanceTo(const DeweyId& descendant) const {
  XO_CHECK(IsAncestorOrSelfOf(descendant));
  return descendant.components_.size() - components_.size();
}

std::string DeweyId::ToString() const {
  std::string out;
  for (size_t i = 0; i < components_.size(); ++i) {
    if (i > 0) out.push_back('.');
    out += std::to_string(components_[i]);
  }
  return out;
}

}  // namespace xontorank
