#ifndef XONTORANK_XML_XML_PARSER_H_
#define XONTORANK_XML_XML_PARSER_H_

#include <optional>
#include <string_view>

#include "common/status.h"
#include "xml/xml_node.h"

namespace xontorank {

/// Options controlling XML parsing.
struct XmlParseOptions {
  /// If true, text nodes consisting solely of whitespace between elements
  /// are dropped (CDA documents are indented for readability; the
  /// inter-element whitespace carries no content).
  bool skip_ignorable_whitespace = true;

  /// If true, code nodes are detected during parsing: any element carrying
  /// both a `code` and a `codeSystem` attribute, or whose `value` carries
  /// them, gets its OntoRef populated (HL7 CDA convention, §II/§III).
  bool detect_onto_refs = true;

  /// Maximum element nesting depth. The parser (and the resulting node
  /// tree's destructor) recurses once per nesting level, so unbounded
  /// depth lets a hostile document like `<a><a><a>...` overflow the
  /// stack. Real CDA documents nest ~10 deep; 256 is generous. Inputs
  /// deeper than this fail with a ParseError. Must be >= 1.
  size_t max_depth = 256;
};

/// Parses `input` into a document tree.
///
/// Supported grammar: one root element; nested elements with attributes
/// (single- or double-quoted); character data; the five predefined entities
/// plus decimal/hex character references; comments; CDATA sections;
/// `<?...?>` processing instructions and XML declarations (skipped);
/// `<!DOCTYPE ...>` (skipped, including bracketed internal subsets).
/// Namespace prefixes are kept as part of tag/attribute names (CDA uses a
/// default namespace throughout, so no prefix resolution is required).
///
/// Errors carry 1-based line:column positions of the offending byte.
[[nodiscard]] Result<XmlDocument> ParseXml(std::string_view input,
                             const XmlParseOptions& options = {});

/// Extracts the ontological reference of a CDA element per the convention of
/// §III: an element with both `code` and `codeSystem` attributes references
/// concept `code` in system `codeSystem`. Returns nullopt otherwise.
std::optional<OntoRef> ExtractOntoRef(const XmlNode& element);

}  // namespace xontorank

#endif  // XONTORANK_XML_XML_PARSER_H_
