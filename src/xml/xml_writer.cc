#include "xml/xml_writer.h"

namespace xontorank {

namespace {

void AppendIndent(std::string& out, int depth, int width) {
  out.append(static_cast<size_t>(depth) * static_cast<size_t>(width), ' ');
}

void WriteNode(const XmlNode& node, const XmlWriteOptions& options, int depth,
               std::string& out) {
  if (node.is_text()) {
    out += EscapeXmlText(node.text());
    return;
  }
  if (options.pretty && depth > 0) {
    out.push_back('\n');
    AppendIndent(out, depth, options.indent_width);
  }
  out.push_back('<');
  out += node.tag();
  for (const XmlAttribute& attr : node.attributes()) {
    out.push_back(' ');
    out += attr.name;
    out += "=\"";
    out += EscapeXmlAttribute(attr.value);
    out.push_back('"');
  }
  if (node.children().empty()) {
    out += "/>";
    return;
  }
  out.push_back('>');
  bool has_element_child = false;
  for (const auto& child : node.children()) {
    if (child->is_element()) has_element_child = true;
    WriteNode(*child, options, depth + 1, out);
  }
  if (options.pretty && has_element_child) {
    out.push_back('\n');
    AppendIndent(out, depth, options.indent_width);
  }
  out += "</";
  out += node.tag();
  out.push_back('>');
}

}  // namespace

std::string WriteXml(const XmlNode& node, const XmlWriteOptions& options) {
  std::string out;
  WriteNode(node, options, 0, out);
  return out;
}

std::string WriteXml(const XmlDocument& doc, const XmlWriteOptions& options) {
  std::string out;
  if (options.emit_declaration) {
    out = "<?xml version=\"1.0\"?>";
    if (options.pretty) out.push_back('\n');
  }
  if (doc.root() != nullptr) {
    WriteNode(*doc.root(), options, 0, out);
  }
  return out;
}

std::string EscapeXmlText(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string EscapeXmlAttribute(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

}  // namespace xontorank
