#ifndef XONTORANK_XML_CORPUS_H_
#define XONTORANK_XML_CORPUS_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "xml/xml_node.h"

namespace xontorank {

/// An immutable-document collection with structural sharing: documents are
/// held by `shared_ptr<const XmlDocument>`, so extending a corpus by a batch
/// of documents copies only the pointer vector — the documents themselves
/// are shared with every other corpus value (and thus every index snapshot)
/// that references them. This is what makes snapshot publication cheap: the
/// writer's new snapshot reuses every already-parsed document.
///
/// A `Corpus` value itself is cheap to copy and safe to copy concurrently
/// with reads; the referenced documents are never mutated.
class Corpus {
 public:
  Corpus() = default;

  /// Wraps a freshly built document vector (the common entry point; CdaGen
  /// and the XML parser produce plain vectors). Implicit so call sites can
  /// pass `generator.GenerateCorpus()` directly; lvalue vectors must be
  /// std::move()d (XmlDocument is move-only).
  Corpus(std::vector<XmlDocument> docs) {  // NOLINT
    docs_.reserve(docs.size());
    for (XmlDocument& doc : docs) {
      docs_.push_back(std::make_shared<const XmlDocument>(std::move(doc)));
    }
  }

  /// Appends a document, wrapping it for sharing.
  void Add(XmlDocument doc) {
    docs_.push_back(std::make_shared<const XmlDocument>(std::move(doc)));
  }

  /// Appends an already-shared document (structural sharing across corpus
  /// values).
  void Add(std::shared_ptr<const XmlDocument> doc) {
    docs_.push_back(std::move(doc));
  }

  size_t size() const { return docs_.size(); }
  bool empty() const { return docs_.empty(); }
  void clear() { docs_.clear(); }

  const XmlDocument& operator[](size_t i) const { return *docs_[i]; }
  const XmlDocument& back() const { return *docs_.back(); }

  /// The shared handle for document `i` (used to extend a corpus without
  /// copying documents).
  const std::shared_ptr<const XmlDocument>& handle(size_t i) const {
    return docs_[i];
  }

  /// Iteration yields `const XmlDocument&`, so range-for code written
  /// against `std::vector<XmlDocument>` keeps working unchanged.
  class const_iterator {
   public:
    using inner = std::vector<std::shared_ptr<const XmlDocument>>::
        const_iterator;
    using iterator_category = std::forward_iterator_tag;
    using value_type = XmlDocument;
    using difference_type = std::ptrdiff_t;
    using pointer = const XmlDocument*;
    using reference = const XmlDocument&;

    explicit const_iterator(inner it) : it_(it) {}
    const XmlDocument& operator*() const { return **it_; }
    const XmlDocument* operator->() const { return it_->get(); }
    const_iterator& operator++() {
      ++it_;
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator copy = *this;
      ++it_;
      return copy;
    }
    bool operator==(const const_iterator& other) const {
      return it_ == other.it_;
    }
    bool operator!=(const const_iterator& other) const {
      return it_ != other.it_;
    }

   private:
    inner it_;
  };

  const_iterator begin() const { return const_iterator(docs_.begin()); }
  const_iterator end() const { return const_iterator(docs_.end()); }

 private:
  std::vector<std::shared_ptr<const XmlDocument>> docs_;
};

}  // namespace xontorank

#endif  // XONTORANK_XML_CORPUS_H_
