#ifndef XONTORANK_XML_XML_PATH_H_
#define XONTORANK_XML_XML_PATH_H_

#include <string_view>
#include <vector>

#include "xml/xml_node.h"

namespace xontorank {

/// Minimal tag-path selection over an XML tree (an XPath-lite for the
/// handful of navigations the CDA model and tests need; not an XPath
/// implementation).
///
/// A path is '/'-separated steps, evaluated relative to `root` (which is
/// not itself matched). Each step is one of:
///  - a tag name — matches element children with that tag;
///  - `*`        — matches any element child;
///  - `**`       — matches any chain of zero or more element levels.
///
/// Examples over a CDA document root:
///  - `component/StructuredBody/component/section` — top-level sections
///  - `**/Observation/value` — every Observation value anywhere
///  - `**/section/*` — all direct children of all sections
///
/// Matches are returned in document order without duplicates. An empty or
/// all-`**` path yields no matches for empty trees and never matches text
/// nodes.
std::vector<const XmlNode*> SelectPath(const XmlNode& root,
                                       std::string_view path);

/// First match of SelectPath or nullptr.
const XmlNode* SelectFirst(const XmlNode& root, std::string_view path);

}  // namespace xontorank

#endif  // XONTORANK_XML_XML_PATH_H_
