#ifndef XONTORANK_XML_DEWEY_REF_H_
#define XONTORANK_XML_DEWEY_REF_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "xml/dewey_id.h"

namespace xontorank {

/// A non-owning view of a Dewey identifier: a pointer into someone else's
/// component storage (a DeweyId's vector, a FlatDil cursor's decode buffer,
/// a columnar arena). All the comparison semantics of DeweyId — document
/// order, prefix containment — without materializing a heap-owned id, which
/// is what keeps the flat DIL merge loop allocation-free.
///
/// Validity follows the underlying storage: a DilCursor's ref dies on the
/// cursor's next advance, a DeweyId's ref dies with the id. Copying the
/// ref never copies components; call ToDeweyId() to own them.
class DeweyRef {
 public:
  constexpr DeweyRef() = default;
  constexpr DeweyRef(const uint32_t* data, size_t size)
      : data_(data), size_(size) {}
  explicit DeweyRef(const DeweyId& id)
      : data_(id.components().data()), size_(id.size()) {}

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }
  uint32_t operator[](size_t i) const { return data_[i]; }
  const uint32_t* data() const { return data_; }

  /// Document id (first component). Requires non-empty.
  uint32_t doc_id() const { return data_[0]; }

  /// Materializes an owning DeweyId (the only allocating operation here).
  DeweyId ToDeweyId() const {
    return DeweyId(std::vector<uint32_t>(data_, data_ + size_));
  }

 private:
  const uint32_t* data_ = nullptr;
  size_t size_ = 0;
};

/// Three-way document-order comparison: negative, zero or positive as
/// `a` sorts before, equal to, or after `b`. Identical semantics to
/// DeweyId::operator< (lexicographic; ancestors before descendants).
inline int CompareDewey(DeweyRef a, DeweyRef b) {
  size_t common = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < common; ++i) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

inline bool operator<(DeweyRef a, DeweyRef b) {
  return CompareDewey(a, b) < 0;
}

inline bool operator==(DeweyRef a, DeweyRef b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

inline bool operator!=(DeweyRef a, DeweyRef b) { return !(a == b); }

inline bool operator==(DeweyRef a, const DeweyId& b) {
  return a == DeweyRef(b);
}
inline bool operator==(const DeweyId& a, DeweyRef b) {
  return DeweyRef(a) == b;
}

/// Number of shared leading components (0 when the ids address different
/// documents); mirrors DeweyId::CommonPrefixLength.
inline size_t CommonPrefixLength(DeweyRef a, DeweyRef b) {
  size_t limit = a.size() < b.size() ? a.size() : b.size();
  size_t n = 0;
  while (n < limit && a[n] == b[n]) ++n;
  return n;
}

}  // namespace xontorank

#endif  // XONTORANK_XML_DEWEY_REF_H_
