#ifndef XONTORANK_XML_XML_WRITER_H_
#define XONTORANK_XML_XML_WRITER_H_

#include <string>
#include <string_view>

#include "xml/xml_node.h"

namespace xontorank {

/// Options controlling XML serialization.
struct XmlWriteOptions {
  /// If true, child elements are placed on their own indented lines.
  bool pretty = false;
  /// Indentation unit when `pretty` is set.
  int indent_width = 2;
  /// If true, an `<?xml version="1.0"?>` declaration is emitted first.
  bool emit_declaration = true;
};

/// Serializes a subtree rooted at `node` to XML text. Attribute values and
/// character data are entity-escaped so that ParseXml(WriteXml(t)) == t.
std::string WriteXml(const XmlNode& node, const XmlWriteOptions& options = {});

/// Serializes a whole document (root element + declaration).
std::string WriteXml(const XmlDocument& doc, const XmlWriteOptions& options = {});

/// Escapes `text` for use as XML character data (&, <, >).
std::string EscapeXmlText(std::string_view text);

/// Escapes `value` for use inside a double-quoted attribute (&, <, >, ").
std::string EscapeXmlAttribute(std::string_view value);

}  // namespace xontorank

#endif  // XONTORANK_XML_XML_WRITER_H_
