#include "xml/xml_node.h"

#include <algorithm>

namespace xontorank {

std::unique_ptr<XmlNode> XmlNode::MakeElement(std::string tag) {
  // xo-lint: allow(new-delete) — private constructor, make_unique cannot.
  auto node = std::unique_ptr<XmlNode>(new XmlNode(Kind::kElement));
  node->tag_ = std::move(tag);
  return node;
}

std::unique_ptr<XmlNode> XmlNode::MakeText(std::string text) {
  // xo-lint: allow(new-delete) — private constructor, make_unique cannot.
  auto node = std::unique_ptr<XmlNode>(new XmlNode(Kind::kText));
  node->text_ = std::move(text);
  return node;
}

void XmlNode::AddAttribute(std::string name, std::string value) {
  attributes_.push_back({std::move(name), std::move(value)});
}

std::optional<std::string_view> XmlNode::GetAttribute(
    std::string_view name) const {
  for (const XmlAttribute& attr : attributes_) {
    if (attr.name == name) return std::string_view(attr.value);
  }
  return std::nullopt;
}

XmlNode* XmlNode::AddChild(std::unique_ptr<XmlNode> child) {
  child->parent_ = this;
  child->ordinal_ = static_cast<uint32_t>(children_.size());
  children_.push_back(std::move(child));
  return children_.back().get();
}

XmlNode* XmlNode::AddElementChild(std::string tag) {
  return AddChild(MakeElement(std::move(tag)));
}

XmlNode* XmlNode::AddTextChild(std::string text) {
  return AddChild(MakeText(std::move(text)));
}

XmlNode* XmlNode::FindChildElement(std::string_view tag) const {
  for (const auto& child : children_) {
    if (child->is_element() && child->tag() == tag) return child.get();
  }
  return nullptr;
}

XmlNode* XmlNode::FindDescendantElement(std::string_view tag) const {
  for (const auto& child : children_) {
    if (child->is_element() && child->tag() == tag) return child.get();
    if (XmlNode* found = child->FindDescendantElement(tag)) return found;
  }
  return nullptr;
}

std::string XmlNode::InnerText() const {
  std::string out;
  Visit([&out](const XmlNode& node) {
    if (node.is_text()) out += node.text();
  });
  return out;
}

size_t XmlNode::SubtreeSize() const {
  size_t count = 1;
  for (const auto& child : children_) count += child->SubtreeSize();
  return count;
}

void XmlNode::Visit(const std::function<void(const XmlNode&)>& fn) const {
  fn(*this);
  for (const auto& child : children_) child->Visit(fn);
}

void XmlNode::VisitMutable(const std::function<void(XmlNode&)>& fn) {
  fn(*this);
  for (const auto& child : children_) child->VisitMutable(fn);
}

DeweyId XmlDocument::DeweyIdOf(const XmlNode& node) const {
  std::vector<uint32_t> reversed;
  const XmlNode* cur = &node;
  while (cur->parent() != nullptr) {
    reversed.push_back(cur->ordinal());
    cur = cur->parent();
  }
  std::vector<uint32_t> comps;
  comps.reserve(reversed.size() + 1);
  comps.push_back(doc_id_);
  comps.insert(comps.end(), reversed.rbegin(), reversed.rend());
  return DeweyId(std::move(comps));
}

const XmlNode* XmlDocument::Resolve(const DeweyId& id) const {
  if (id.empty() || id.doc_id() != doc_id_ || root_ == nullptr) return nullptr;
  const XmlNode* cur = root_.get();
  for (size_t i = 1; i < id.size(); ++i) {
    uint32_t ordinal = id[i];
    if (ordinal >= cur->children().size()) return nullptr;
    cur = cur->children()[ordinal].get();
  }
  return cur;
}

}  // namespace xontorank
