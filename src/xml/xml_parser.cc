#include "xml/xml_parser.h"

#include <cctype>
#include <string>

#include "common/string_util.h"

namespace xontorank {

namespace {

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
         c == '-' || c == '.';
}

bool IsXmlWhitespace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

/// Recursive-descent XML parser with line/column tracking.
class Parser {
 public:
  Parser(std::string_view input, const XmlParseOptions& options)
      : input_(input), options_(options) {}

  Result<XmlDocument> Parse() {
    SkipProlog();
    if (AtEnd()) return Error("document contains no root element");
    if (Peek() != '<') return Error("expected '<' before root element");
    auto root = ParseElement();
    if (!root.ok()) return root.status();
    SkipMisc();
    if (!AtEnd()) return Error("content after the root element");
    XmlDocument doc(std::move(root).value());
    if (options_.detect_onto_refs) {
      doc.mutable_root()->VisitMutable([](XmlNode& node) {
        if (!node.is_element()) return;
        if (auto ref = ExtractOntoRef(node)) node.set_onto_ref(*ref);
      });
    }
    return doc;
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  char PeekAt(size_t offset) const {
    size_t i = pos_ + offset;
    return i < input_.size() ? input_[i] : '\0';
  }
  bool LookingAt(std::string_view s) const {
    return input_.substr(pos_, s.size()) == s;
  }

  void Advance() {
    if (input_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  void AdvanceBy(size_t n) {
    for (size_t i = 0; i < n && !AtEnd(); ++i) Advance();
  }

  Status Error(std::string_view what) const {
    return Status::ParseError(StringPrintf("%zu:%zu: %.*s", line_, column_,
                                           static_cast<int>(what.size()),
                                           what.data()));
  }

  void SkipWhitespace() {
    while (!AtEnd() && IsXmlWhitespace(Peek())) Advance();
  }

  /// Skips the XML declaration, PIs, comments, DOCTYPE and whitespace that
  /// may precede the root element.
  void SkipProlog() {
    while (true) {
      SkipWhitespace();
      if (LookingAt("<?")) {
        SkipUntil("?>");
      } else if (LookingAt("<!--")) {
        SkipUntil("-->");
      } else if (LookingAt("<!DOCTYPE")) {
        SkipDoctype();
      } else {
        return;
      }
    }
  }

  /// Skips comments/PIs/whitespace after the root element.
  void SkipMisc() {
    while (true) {
      SkipWhitespace();
      if (LookingAt("<?")) {
        SkipUntil("?>");
      } else if (LookingAt("<!--")) {
        SkipUntil("-->");
      } else {
        return;
      }
    }
  }

  void SkipUntil(std::string_view terminator) {
    while (!AtEnd() && !LookingAt(terminator)) Advance();
    AdvanceBy(terminator.size());
  }

  void SkipDoctype() {
    // <!DOCTYPE name ... [internal subset]? >
    int bracket_depth = 0;
    while (!AtEnd()) {
      char c = Peek();
      if (c == '[') ++bracket_depth;
      if (c == ']') --bracket_depth;
      Advance();
      if (c == '>' && bracket_depth <= 0) return;
    }
  }

  Result<std::string> ParseName() {
    if (AtEnd() || !IsNameStartChar(Peek())) {
      return Error("expected a name");
    }
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) Advance();
    return std::string(input_.substr(start, pos_ - start));
  }

  /// Decodes one entity or character reference starting at '&'.
  Result<std::string> ParseReference() {
    Advance();  // consume '&'
    size_t start = pos_;
    while (!AtEnd() && Peek() != ';') {
      if (pos_ - start > 10) return Error("unterminated entity reference");
      Advance();
    }
    if (AtEnd()) return Error("unterminated entity reference");
    std::string_view name = input_.substr(start, pos_ - start);
    Advance();  // consume ';'
    if (name == "lt") return std::string("<");
    if (name == "gt") return std::string(">");
    if (name == "amp") return std::string("&");
    if (name == "quot") return std::string("\"");
    if (name == "apos") return std::string("'");
    if (!name.empty() && name[0] == '#') {
      uint32_t code = 0;
      bool ok = false;
      if (name.size() > 2 && (name[1] == 'x' || name[1] == 'X')) {
        for (size_t i = 2; i < name.size(); ++i) {
          char c = name[i];
          uint32_t digit = 0;
          if (c >= '0' && c <= '9') digit = static_cast<uint32_t>(c - '0');
          else if (c >= 'a' && c <= 'f') digit = static_cast<uint32_t>(c - 'a' + 10);
          else if (c >= 'A' && c <= 'F') digit = static_cast<uint32_t>(c - 'A' + 10);
          else return Error("bad hexadecimal character reference");
          code = code * 16 + digit;
          ok = true;
        }
      } else {
        for (size_t i = 1; i < name.size(); ++i) {
          char c = name[i];
          if (c < '0' || c > '9') return Error("bad character reference");
          code = code * 10 + static_cast<uint32_t>(c - '0');
          ok = true;
        }
      }
      if (!ok || code == 0 || code > 0x10FFFF) {
        return Error("character reference out of range");
      }
      return EncodeUtf8(code);
    }
    return Error("unknown entity reference");
  }

  static std::string EncodeUtf8(uint32_t code) {
    std::string out;
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
    return out;
  }

  Result<std::string> ParseAttributeValue() {
    if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
      return Error("expected quoted attribute value");
    }
    char quote = Peek();
    Advance();
    std::string value;
    while (!AtEnd() && Peek() != quote) {
      char c = Peek();
      if (c == '<') return Error("'<' not allowed inside attribute value");
      if (c == '&') {
        auto ref = ParseReference();
        if (!ref.ok()) return ref.status();
        value += *ref;
      } else {
        value.push_back(c);
        Advance();
      }
    }
    if (AtEnd()) return Error("unterminated attribute value");
    Advance();  // consume closing quote
    return value;
  }

  Result<std::unique_ptr<XmlNode>> ParseElement() {
    if (depth_ >= options_.max_depth) {
      return Error("element nesting exceeds the configured maximum depth");
    }
    ++depth_;
    auto result = ParseElementBody();
    --depth_;
    return result;
  }

  Result<std::unique_ptr<XmlNode>> ParseElementBody() {
    Advance();  // consume '<'
    auto tag = ParseName();
    if (!tag.ok()) return tag.status();
    auto element = XmlNode::MakeElement(std::move(tag).value());

    // Attributes.
    while (true) {
      bool saw_space = false;
      while (!AtEnd() && IsXmlWhitespace(Peek())) {
        saw_space = true;
        Advance();
      }
      if (AtEnd()) return Error("unterminated start tag");
      if (Peek() == '>' || LookingAt("/>")) break;
      if (!saw_space) return Error("expected whitespace before attribute");
      auto name = ParseName();
      if (!name.ok()) return name.status();
      SkipWhitespace();
      if (AtEnd() || Peek() != '=') return Error("expected '=' after attribute name");
      Advance();
      SkipWhitespace();
      auto value = ParseAttributeValue();
      if (!value.ok()) return value.status();
      if (element->GetAttribute(*name).has_value()) {
        return Error("duplicate attribute '" + *name + "'");
      }
      element->AddAttribute(std::move(name).value(), std::move(value).value());
    }

    if (LookingAt("/>")) {
      AdvanceBy(2);
      return element;
    }
    Advance();  // consume '>'

    // Content.
    std::string pending_text;
    auto flush_text = [&]() {
      if (pending_text.empty()) return;
      if (options_.skip_ignorable_whitespace &&
          TrimWhitespace(pending_text).empty()) {
        pending_text.clear();
        return;
      }
      element->AddTextChild(std::move(pending_text));
      pending_text.clear();
    };

    while (true) {
      if (AtEnd()) return Error("unexpected end of input inside element '" +
                                element->tag() + "'");
      char c = Peek();
      if (c == '<') {
        if (LookingAt("</")) {
          flush_text();
          AdvanceBy(2);
          auto close = ParseName();
          if (!close.ok()) return close.status();
          if (*close != element->tag()) {
            return Error("mismatched end tag: expected </" + element->tag() +
                         "> but found </" + *close + ">");
          }
          SkipWhitespace();
          if (AtEnd() || Peek() != '>') return Error("expected '>' in end tag");
          Advance();
          return element;
        }
        if (LookingAt("<!--")) {
          SkipUntil("-->");
          continue;
        }
        if (LookingAt("<![CDATA[")) {
          AdvanceBy(9);
          size_t start = pos_;
          while (!AtEnd() && !LookingAt("]]>")) Advance();
          if (AtEnd()) return Error("unterminated CDATA section");
          pending_text += input_.substr(start, pos_ - start);
          AdvanceBy(3);
          continue;
        }
        if (LookingAt("<?")) {
          SkipUntil("?>");
          continue;
        }
        flush_text();
        auto child = ParseElement();
        if (!child.ok()) return child.status();
        element->AddChild(std::move(child).value());
      } else if (c == '&') {
        auto ref = ParseReference();
        if (!ref.ok()) return ref.status();
        pending_text += *ref;
      } else {
        pending_text.push_back(c);
        Advance();
      }
    }
  }

  std::string_view input_;
  XmlParseOptions options_;
  size_t depth_ = 0;
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t column_ = 1;
};

}  // namespace

Result<XmlDocument> ParseXml(std::string_view input,
                             const XmlParseOptions& options) {
  Parser parser(input, options);
  return parser.Parse();
}

std::optional<OntoRef> ExtractOntoRef(const XmlNode& element) {
  if (!element.is_element()) return std::nullopt;
  auto code = element.GetAttribute("code");
  auto system = element.GetAttribute("codeSystem");
  if (!code.has_value() || !system.has_value()) return std::nullopt;
  if (code->empty() || system->empty()) return std::nullopt;
  return OntoRef{std::string(*system), std::string(*code)};
}

}  // namespace xontorank
