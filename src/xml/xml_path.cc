#include "xml/xml_path.h"

#include <algorithm>

#include "common/string_util.h"

namespace xontorank {

namespace {

/// The matcher runs as a small NFA over step indices, walking the tree once
/// in document order (so results come out in document order without
/// sorting). A state s means "steps[s..] remain to be matched below the
/// current node"; `**` states persist across levels and epsilon-advance.

/// Adds `s` and, while steps[s] == "**", also s+1 (zero-level expansion).
/// `steps.size()` acts as the accept state.
void AddWithClosure(const std::vector<std::string_view>& steps, size_t s,
                    std::vector<size_t>& states) {
  while (true) {
    if (std::find(states.begin(), states.end(), s) == states.end()) {
      states.push_back(s);
    }
    if (s >= steps.size() || steps[s] != "**") return;
    ++s;
  }
}

bool ContainsAccept(const std::vector<std::string_view>& steps,
                    const std::vector<size_t>& states) {
  return std::find(states.begin(), states.end(), steps.size()) != states.end();
}

void Walk(const XmlNode& node, const std::vector<std::string_view>& steps,
          const std::vector<size_t>& states,
          std::vector<const XmlNode*>& out) {
  if (states.empty()) return;
  for (const auto& child : node.children()) {
    if (!child->is_element()) continue;
    std::vector<size_t> next;
    bool emit = false;
    for (size_t s : states) {
      if (s >= steps.size()) continue;
      std::string_view step = steps[s];
      if (step == "**") {
        // The ** consumes this child and stays active.
        AddWithClosure(steps, s, next);
        continue;
      }
      if (step == "*" || step == child->tag()) {
        std::vector<size_t> advanced;
        AddWithClosure(steps, s + 1, advanced);
        if (ContainsAccept(steps, advanced)) emit = true;
        for (size_t a : advanced) {
          if (a < steps.size() &&
              std::find(next.begin(), next.end(), a) == next.end()) {
            next.push_back(a);
          }
        }
      }
    }
    if (emit) out.push_back(child.get());
    Walk(*child, steps, next, out);
  }
}

}  // namespace

std::vector<const XmlNode*> SelectPath(const XmlNode& root,
                                       std::string_view path) {
  std::vector<const XmlNode*> out;
  std::vector<std::string_view> steps;
  for (std::string_view step : SplitString(path, '/')) {
    std::string_view trimmed = TrimWhitespace(step);
    if (!trimmed.empty()) steps.push_back(trimmed);
  }
  if (steps.empty()) return out;
  std::vector<size_t> initial;
  AddWithClosure(steps, 0, initial);
  Walk(root, steps, initial, out);
  return out;
}

const XmlNode* SelectFirst(const XmlNode& root, std::string_view path) {
  std::vector<const XmlNode*> matches = SelectPath(root, path);
  return matches.empty() ? nullptr : matches.front();
}

}  // namespace xontorank
