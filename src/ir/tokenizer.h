#ifndef XONTORANK_IR_TOKENIZER_H_
#define XONTORANK_IR_TOKENIZER_H_

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace xontorank {

/// Options controlling tokenization.
///
/// Queries and documents must be tokenized with the *same* options or
/// lookups will silently miss (e.g. an index folding plurals while the
/// query does not). The engine defaults keep everything off; callers
/// enabling folding or stopwords must apply the options on both sides.
struct TokenizerOptions {
  /// Tokens shorter than this are dropped.
  size_t min_token_length = 1;
  /// If true, tokens consisting solely of digits are dropped. Per §III,
  /// numeric code strings (concept codes, OIDs) are excluded from a node's
  /// textual description since they are unlikely query keywords.
  bool drop_numeric_tokens = true;
  /// If true, a light "s-stemmer" folds English plurals so that
  /// "arrhythmias" and "arrhythmia" index identically: -ies → -y,
  /// -es after s/x/z/ch/sh is stripped, and a trailing -s is stripped
  /// (except -ss/-us/-is). Only tokens of ≥ 4 characters are folded.
  bool fold_plurals = false;
  /// Tokens contained here (post-folding) are dropped. Non-owning; must
  /// outlive every call using these options. nullptr disables filtering.
  const std::unordered_set<std::string>* stopwords = nullptr;
};

/// A small English stopword list suited to clinical narrative ("the", "of",
/// "with", "every", …). Never includes medical terms.
const std::unordered_set<std::string>& DefaultClinicalStopwords();

/// The plural-folding rule used when TokenizerOptions::fold_plurals is set,
/// exposed for tests and for callers that normalize query terms manually.
std::string FoldPlural(std::string token);

/// Splits text into lower-cased alphanumeric tokens.
///
/// A token is a maximal run of ASCII letters and digits; everything else is
/// a separator. Case is folded, so "Asthma" and "asthma" index identically.
std::vector<std::string> Tokenize(std::string_view text,
                                  const TokenizerOptions& options = {});

/// Like Tokenize but also reports each token's ordinal position, which the
/// positional index uses for phrase matching. Positions are ordinals over
/// the *raw* token stream, so dropped tokens (numbers, stopwords) still
/// consume a position and never fake adjacency.
struct PositionedToken {
  std::string token;
  uint32_t position;
};
/// If `raw_token_count` is non-null it receives the total number of raw
/// tokens scanned (kept or dropped) — the amount by which a caller that
/// concatenates segments must advance its position base.
std::vector<PositionedToken> TokenizeWithPositions(
    std::string_view text, const TokenizerOptions& options = {},
    uint32_t* raw_token_count = nullptr);

/// Normalizes a single keyword (lower-case, trims): the form under which
/// terms are stored in vocabularies.
std::string NormalizeToken(std::string_view token);

}  // namespace xontorank

#endif  // XONTORANK_IR_TOKENIZER_H_
