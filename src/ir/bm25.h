#ifndef XONTORANK_IR_BM25_H_
#define XONTORANK_IR_BM25_H_

#include <cstddef>

namespace xontorank {

/// Okapi BM25 parameters (Robertson & Walker, SIGIR'94 — the IR function the
/// paper uses for IRS, §III).
struct Bm25Params {
  double k1 = 1.2;  ///< term-frequency saturation
  double b = 0.75;  ///< length normalization strength
};

/// Per-term BM25 contribution for one (term, unit) pair.
///
/// \param tf          term frequency within the unit
/// \param df          number of units containing the term
/// \param num_units   total number of units in the collection
/// \param unit_length token count of the unit
/// \param avg_length  mean token count across all units
/// \param params      k1/b knobs
///
/// Uses the non-negative idf variant log(1 + (N - df + 0.5)/(df + 0.5)) so
/// very frequent terms cannot produce negative scores.
double Bm25TermScore(size_t tf, size_t df, size_t num_units,
                     size_t unit_length, double avg_length,
                     const Bm25Params& params = {});

}  // namespace xontorank

#endif  // XONTORANK_IR_BM25_H_
