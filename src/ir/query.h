#ifndef XONTORANK_IR_QUERY_H_
#define XONTORANK_IR_QUERY_H_

#include <string>
#include <string_view>
#include <vector>

namespace xontorank {

/// One query keyword (§III). A keyword may be a phrase enclosed in quotes in
/// the query string (e.g. `"cardiac arrest"` in Table I), in which case it
/// matches only adjacent occurrences of its tokens.
struct Keyword {
  /// Normalized tokens; a plain keyword has exactly one.
  std::vector<std::string> tokens;
  /// The keyword as the user wrote it (for display).
  std::string display;

  bool is_phrase() const { return tokens.size() > 1; }

  /// Canonical single-string form ("cardiac arrest") used as a hash-map key.
  std::string Canonical() const;

  bool operator==(const Keyword& other) const { return tokens == other.tokens; }
};

/// A keyword query: a set of keywords, all of which a result subtree must be
/// associated with (conjunctive semantics, §III).
struct KeywordQuery {
  std::vector<Keyword> keywords;

  bool empty() const { return keywords.empty(); }
  size_t size() const { return keywords.size(); }

  /// Round-trippable rendering, quoting phrases.
  std::string ToString() const;
};

/// Parses a query string into keywords. Double-quoted spans become phrase
/// keywords; other whitespace-separated words become single-token keywords.
/// Tokens are normalized exactly as document text is tokenized, so matching
/// is consistent. Keywords that normalize to nothing (e.g. punctuation) are
/// dropped.
KeywordQuery ParseQuery(std::string_view query_text);

/// Builds a single keyword from raw text (used programmatically by the
/// benchmark workloads). Multi-token text becomes a phrase keyword.
Keyword MakeKeyword(std::string_view text);

}  // namespace xontorank

#endif  // XONTORANK_IR_QUERY_H_
