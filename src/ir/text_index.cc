#include "ir/text_index.h"

#include <algorithm>

#include "common/check.h"

namespace xontorank {

void TextIndex::AddUnit(uint32_t unit_id, std::string_view text) {
  XO_CHECK(!finalized_ && "AddUnit after Finalize");
  uint32_t& length = unit_lengths_[unit_id];  // creates entry if absent
  uint32_t raw_tokens = 0;
  std::vector<PositionedToken> tokens =
      TokenizeWithPositions(text, tokenizer_, &raw_tokens);
  for (PositionedToken& tok : tokens) {
    PostingList& list = postings_[tok.token];
    if (list.empty() || list.back().unit_id != unit_id) {
      // Units are commonly added in ascending order, making this an append;
      // out-of-order additions are fixed up in Finalize().
      list.push_back({unit_id, {}});
    }
    list.back().positions.push_back(length + tok.position);
  }
  // Advance by the RAW token count: a dropped trailing token (number,
  // stopword) still occupies a position, so tokens of the next segment can
  // never become falsely phrase-adjacent to this one.
  length += raw_tokens;
}

void TextIndex::Reopen() {
  XO_CHECK(finalized_ && "Reopen only applies to a finalized index");
  finalized_ = false;
}

void TextIndex::Finalize() {
  XO_CHECK(!finalized_);
  for (auto& [term, list] : postings_) {
    std::sort(list.begin(), list.end(),
              [](const Posting& a, const Posting& b) {
                return a.unit_id < b.unit_id;
              });
    // Merge duplicate unit entries produced by out-of-order AddUnit calls.
    PostingList merged;
    for (Posting& p : list) {
      if (!merged.empty() && merged.back().unit_id == p.unit_id) {
        merged.back().positions.insert(merged.back().positions.end(),
                                       p.positions.begin(), p.positions.end());
      } else {
        merged.push_back(std::move(p));
      }
    }
    for (Posting& p : merged) {
      std::sort(p.positions.begin(), p.positions.end());
    }
    list = std::move(merged);
  }
  double total = 0.0;
  for (const auto& [unit, len] : unit_lengths_) total += len;
  avg_unit_length_ =
      unit_lengths_.empty() ? 0.0 : total / static_cast<double>(unit_lengths_.size());
  finalized_ = true;
}

const TextIndex::PostingList* TextIndex::FindPostings(
    std::string_view token) const {
  auto it = postings_.find(std::string(token));
  return it == postings_.end() ? nullptr : &it->second;
}

std::vector<std::pair<uint32_t, uint32_t>> TextIndex::MatchCounts(
    const Keyword& keyword) const {
  XO_CHECK(finalized_ && "Lookup before Finalize");
  std::vector<std::pair<uint32_t, uint32_t>> counts;
  if (keyword.tokens.empty()) return counts;

  if (!keyword.is_phrase()) {
    const PostingList* list = FindPostings(keyword.tokens[0]);
    if (list == nullptr) return counts;
    counts.reserve(list->size());
    for (const Posting& p : *list) {
      counts.emplace_back(p.unit_id, static_cast<uint32_t>(p.positions.size()));
    }
    return counts;
  }

  // Phrase: intersect posting lists, then count adjacent position chains.
  std::vector<const PostingList*> lists;
  lists.reserve(keyword.tokens.size());
  for (const std::string& token : keyword.tokens) {
    const PostingList* list = FindPostings(token);
    if (list == nullptr) return counts;
    lists.push_back(list);
  }
  // Galloping would be overkill; a k-way pointer walk over sorted lists.
  std::vector<size_t> cursor(lists.size(), 0);
  while (true) {
    // Find the max current unit across all cursors.
    uint32_t target = 0;
    bool done = false;
    for (size_t i = 0; i < lists.size(); ++i) {
      if (cursor[i] >= lists[i]->size()) {
        done = true;
        break;
      }
      target = std::max(target, (*lists[i])[cursor[i]].unit_id);
    }
    if (done) break;
    // Advance every cursor to >= target.
    bool aligned = true;
    for (size_t i = 0; i < lists.size(); ++i) {
      while (cursor[i] < lists[i]->size() &&
             (*lists[i])[cursor[i]].unit_id < target) {
        ++cursor[i];
      }
      if (cursor[i] >= lists[i]->size() ||
          (*lists[i])[cursor[i]].unit_id != target) {
        aligned = false;
      }
    }
    if (cursor[0] >= lists[0]->size()) break;
    if (!aligned) continue;
    // All lists point at `target`; count phrase occurrences.
    uint32_t phrase_count = 0;
    const std::vector<uint32_t>& first = (*lists[0])[cursor[0]].positions;
    for (uint32_t pos : first) {
      bool chain = true;
      for (size_t i = 1; i < lists.size(); ++i) {
        const std::vector<uint32_t>& positions =
            (*lists[i])[cursor[i]].positions;
        if (!std::binary_search(positions.begin(), positions.end(),
                                pos + static_cast<uint32_t>(i))) {
          chain = false;
          break;
        }
      }
      if (chain) ++phrase_count;
    }
    if (phrase_count > 0) counts.emplace_back(target, phrase_count);
    for (size_t i = 0; i < lists.size(); ++i) ++cursor[i];
  }
  return counts;
}

std::vector<ScoredUnit> TextIndex::Lookup(const Keyword& keyword) const {
  std::vector<std::pair<uint32_t, uint32_t>> counts = MatchCounts(keyword);
  std::vector<ScoredUnit> out;
  if (counts.empty()) return out;
  const size_t df = counts.size();
  out.reserve(df);
  double max_score = 0.0;
  for (const auto& [unit, tf] : counts) {
    auto len_it = unit_lengths_.find(unit);
    size_t len = len_it == unit_lengths_.end() ? 0 : len_it->second;
    double score =
        Bm25TermScore(tf, df, unit_lengths_.size(), len, avg_unit_length_,
                      params_);
    out.push_back({unit, score});
    max_score = std::max(max_score, score);
  }
  if (max_score > 0.0) {
    for (ScoredUnit& s : out) s.score /= max_score;
  }
  return out;
}

double TextIndex::RawScore(uint32_t unit_id, const Keyword& keyword) const {
  std::vector<std::pair<uint32_t, uint32_t>> counts = MatchCounts(keyword);
  for (const auto& [unit, tf] : counts) {
    if (unit != unit_id) continue;
    auto len_it = unit_lengths_.find(unit);
    size_t len = len_it == unit_lengths_.end() ? 0 : len_it->second;
    return Bm25TermScore(tf, counts.size(), unit_lengths_.size(), len,
                         avg_unit_length_, params_);
  }
  return 0.0;
}

std::vector<std::string> TextIndex::Vocabulary() const {
  std::vector<std::string> terms;
  terms.reserve(postings_.size());
  for (const auto& [term, list] : postings_) terms.push_back(term);
  std::sort(terms.begin(), terms.end());
  return terms;
}

bool TextIndex::ContainsTerm(std::string_view token) const {
  return postings_.find(std::string(token)) != postings_.end();
}

}  // namespace xontorank
