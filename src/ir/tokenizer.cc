#include "ir/tokenizer.h"

#include <cctype>

#include "common/string_util.h"

namespace xontorank {

namespace {

bool IsTokenChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0;
}

bool KeepToken(std::string_view token, const TokenizerOptions& options) {
  if (token.size() < options.min_token_length) return false;
  if (options.drop_numeric_tokens && IsAllDigits(token)) return false;
  return true;
}

/// Applies folding and stopword filtering; empties the token to drop it.
void PostProcess(std::string& token, const TokenizerOptions& options) {
  if (options.fold_plurals) token = FoldPlural(std::move(token));
  if (options.stopwords != nullptr && options.stopwords->count(token) > 0) {
    token.clear();
  }
}

}  // namespace

const std::unordered_set<std::string>& DefaultClinicalStopwords() {
  // xo-lint: allow(new-delete) — leaked singleton table.
  static const auto* kStopwords = new std::unordered_set<std::string>{
      "the",  "a",    "an",   "of",   "and",  "or",    "to",    "in",
      "on",   "for",  "with", "was",  "is",   "are",   "were",  "be",
      "been", "by",   "at",   "as",   "if",   "from",  "this",  "that",
      "than", "then", "it",   "its",  "his",  "her",   "their", "no",
      "not",  "but",  "into", "over", "under", "after", "before",
      "every", "each", "per",  "during",
  };
  return *kStopwords;
}

std::string FoldPlural(std::string token) {
  if (token.size() < 4) return token;
  auto ends_with = [&token](std::string_view suffix) {
    return token.size() >= suffix.size() &&
           token.compare(token.size() - suffix.size(), suffix.size(),
                         suffix) == 0;
  };
  if (ends_with("ies")) {
    token.erase(token.size() - 3);
    token.push_back('y');
    return token;
  }
  if (ends_with("sses") || ends_with("xes") || ends_with("zes") ||
      ends_with("ches") || ends_with("shes")) {
    token.erase(token.size() - 2);
    return token;
  }
  if (ends_with("ss") || ends_with("us") || ends_with("is")) {
    return token;  // "stenosis", "ductus", "access" stay intact
  }
  if (token.back() == 's') token.pop_back();
  return token;
}

std::vector<std::string> Tokenize(std::string_view text,
                                  const TokenizerOptions& options) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && !IsTokenChar(text[i])) ++i;
    size_t start = i;
    while (i < text.size() && IsTokenChar(text[i])) ++i;
    if (i > start) {
      std::string token = AsciiToLower(text.substr(start, i - start));
      if (KeepToken(token, options)) {
        PostProcess(token, options);
        if (!token.empty()) tokens.push_back(std::move(token));
      }
    }
  }
  return tokens;
}

std::vector<PositionedToken> TokenizeWithPositions(
    std::string_view text, const TokenizerOptions& options,
    uint32_t* raw_token_count) {
  std::vector<PositionedToken> tokens;
  uint32_t position = 0;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && !IsTokenChar(text[i])) ++i;
    size_t start = i;
    while (i < text.size() && IsTokenChar(text[i])) ++i;
    if (i > start) {
      std::string token = AsciiToLower(text.substr(start, i - start));
      // Position advances over every raw token so that phrase adjacency is
      // preserved even when a dropped token sits between two kept ones.
      if (KeepToken(token, options)) {
        PostProcess(token, options);
        if (!token.empty()) tokens.push_back({std::move(token), position});
      }
      ++position;
    }
  }
  if (raw_token_count != nullptr) *raw_token_count = position;
  return tokens;
}

std::string NormalizeToken(std::string_view token) {
  return AsciiToLower(TrimWhitespace(token));
}

}  // namespace xontorank
