#ifndef XONTORANK_IR_TEXT_INDEX_H_
#define XONTORANK_IR_TEXT_INDEX_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ir/bm25.h"
#include "ir/query.h"
#include "ir/tokenizer.h"

namespace xontorank {

/// A unit matched by a keyword, with its normalized relevance score.
struct ScoredUnit {
  uint32_t unit_id;
  double score;  ///< normalized IRS in [0, 1]

  bool operator==(const ScoredUnit& other) const {
    return unit_id == other.unit_id && score == other.score;
  }
};

/// Positional full-text index over arbitrary "virtual documents" (units).
///
/// The paper applies one IR function to two collections: each XML node's
/// textual description (§III) and each ontology concept's terms (§IV). Both
/// are indexed through this class; a unit is identified by a caller-chosen
/// uint32 id. Scores returned by Lookup are BM25 values normalized per
/// keyword to [0, 1] (the paper requires IRS ∈ [0,1] for Eq. 5), so the best
/// textual match for a keyword always scores 1.
///
/// Usage: AddUnit() for every unit, then Finalize(), then Lookup(). Lookups
/// before Finalize() or adds after it are programming errors (assert).
class TextIndex {
 public:
  explicit TextIndex(Bm25Params params = {}, TokenizerOptions tokenizer = {})
      : params_(params), tokenizer_(tokenizer) {}

  /// Indexes `text` under `unit_id`. May be called repeatedly with the same
  /// id to extend a unit (token positions continue from the previous call).
  void AddUnit(uint32_t unit_id, std::string_view text);

  /// Freezes the index and computes collection statistics.
  void Finalize();

  /// Reopens a finalized index for further AddUnit calls; Finalize() must
  /// be called again before lookups. Existing postings are kept (they are
  /// re-sorted and re-merged on the next Finalize), so appending units is
  /// equivalent to having indexed everything in one pass.
  void Reopen();

  bool finalized() const { return finalized_; }

  /// All units matching `keyword` (conjunction of adjacent tokens for
  /// phrases), each with a normalized BM25 score in (0, 1]. Sorted by
  /// unit id. Empty if no unit matches.
  std::vector<ScoredUnit> Lookup(const Keyword& keyword) const;

  /// Raw (unnormalized) BM25 score of `keyword` for one unit; 0 if the unit
  /// does not match.
  double RawScore(uint32_t unit_id, const Keyword& keyword) const;

  /// Number of distinct units indexed.
  size_t unit_count() const { return unit_lengths_.size(); }

  /// Number of distinct terms indexed.
  size_t term_count() const { return postings_.size(); }

  /// The indexed vocabulary (distinct single tokens), sorted.
  std::vector<std::string> Vocabulary() const;

  /// True if at least one unit contains the token.
  bool ContainsTerm(std::string_view token) const;

 private:
  struct Posting {
    uint32_t unit_id;
    std::vector<uint32_t> positions;  // sorted token positions within unit
  };
  using PostingList = std::vector<Posting>;

  /// Occurrence count of `keyword` in each unit (phrase-aware); pairs of
  /// (unit, tf), sorted by unit id.
  std::vector<std::pair<uint32_t, uint32_t>> MatchCounts(
      const Keyword& keyword) const;

  const PostingList* FindPostings(std::string_view token) const;

  Bm25Params params_;
  TokenizerOptions tokenizer_;
  bool finalized_ = false;
  std::unordered_map<std::string, PostingList> postings_;
  std::unordered_map<uint32_t, uint32_t> unit_lengths_;
  double avg_unit_length_ = 0.0;
};

}  // namespace xontorank

#endif  // XONTORANK_IR_TEXT_INDEX_H_
