#include "ir/bm25.h"

#include <cmath>

namespace xontorank {

double Bm25TermScore(size_t tf, size_t df, size_t num_units,
                     size_t unit_length, double avg_length,
                     const Bm25Params& params) {
  if (tf == 0 || df == 0 || num_units == 0) return 0.0;
  const double n = static_cast<double>(num_units);
  const double idf =
      std::log(1.0 + (n - static_cast<double>(df) + 0.5) /
                         (static_cast<double>(df) + 0.5));
  const double tfd = static_cast<double>(tf);
  const double len_norm =
      params.k1 *
      (1.0 - params.b +
       params.b * (avg_length > 0.0
                       ? static_cast<double>(unit_length) / avg_length
                       : 1.0));
  return idf * (tfd * (params.k1 + 1.0)) / (tfd + len_norm);
}

}  // namespace xontorank
