#include "ir/query.h"

#include "common/string_util.h"
#include "ir/tokenizer.h"

namespace xontorank {

std::string Keyword::Canonical() const {
  std::string out;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (i > 0) out.push_back(' ');
    out += tokens[i];
  }
  return out;
}

std::string KeywordQuery::ToString() const {
  std::string out;
  for (size_t i = 0; i < keywords.size(); ++i) {
    if (i > 0) out.push_back(' ');
    if (keywords[i].is_phrase()) {
      out.push_back('"');
      out += keywords[i].Canonical();
      out.push_back('"');
    } else {
      out += keywords[i].Canonical();
    }
  }
  return out;
}

Keyword MakeKeyword(std::string_view text) {
  Keyword kw;
  kw.display = std::string(TrimWhitespace(text));
  kw.tokens = Tokenize(text);
  return kw;
}

KeywordQuery ParseQuery(std::string_view query_text) {
  KeywordQuery query;
  size_t i = 0;
  while (i < query_text.size()) {
    // Skip separators.
    while (i < query_text.size() &&
           (query_text[i] == ' ' || query_text[i] == '\t')) {
      ++i;
    }
    if (i >= query_text.size()) break;
    std::string_view raw;
    if (query_text[i] == '"') {
      size_t close = query_text.find('"', i + 1);
      if (close == std::string_view::npos) {
        raw = query_text.substr(i + 1);
        i = query_text.size();
      } else {
        raw = query_text.substr(i + 1, close - i - 1);
        i = close + 1;
      }
    } else {
      size_t end = i;
      while (end < query_text.size() && query_text[end] != ' ' &&
             query_text[end] != '\t' && query_text[end] != '"') {
        ++end;
      }
      raw = query_text.substr(i, end - i);
      i = end;
    }
    Keyword kw = MakeKeyword(raw);
    if (!kw.tokens.empty()) query.keywords.push_back(std::move(kw));
  }
  return query;
}

}  // namespace xontorank
