// Seed-corpus generator for the fuzz/ harnesses (see fuzz/README.md).
//
//   make_fuzz_corpus OUTDIR            write valid-ish seed inputs
//   make_fuzz_corpus OUTDIR --hostile  write known-trigger regression inputs
//
// Creates OUTDIR/<surface>/ for each harness surface (xml_parse,
// xodl_decode, segment_open, query, dewey). Seeds are well-formed
// instances of each wire format produced by the repo's own encoders, so
// mutation starts from deep inside the accept-states of every parser.
// The hostile set reproduces the classes of bug the hardening work
// fixed — depth bombs, count bombs, inflated headers — crafted with the
// same encoders plus targeted patching, and is committed under
// fuzz/corpus/regression/ where ctest replays it forever.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "cda/cda_document.h"
#include "cda/cda_generator.h"
#include "common/random.h"
#include "core/flat_dil.h"
#include "core/xonto_dil.h"
#include "onto/snomed_fragment.h"
#include "storage/coding.h"
#include "storage/index_store.h"
#include "storage/manifest.h"
#include "storage/segment_format.h"
#include "storage/segment_writer.h"
#include "xml/xml_writer.h"

namespace xontorank {
namespace {

namespace fs = std::filesystem;

void WriteFile(const fs::path& dir, const std::string& name,
               std::string_view bytes) {
  fs::create_directories(dir);
  std::ofstream out(dir / name, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Same shape as the segment/flat-dil tests' randomized index.
XOntoDil RandomDil(Rng& rng, size_t num_keywords, size_t max_postings) {
  XOntoDil dil;
  for (size_t w = 0; w < num_keywords; ++w) {
    std::vector<DilPosting> postings;
    std::set<std::vector<uint32_t>> used;
    size_t n = 1 + rng.NextBelow(max_postings);
    for (size_t i = 0; i < n; ++i) {
      std::vector<uint32_t> comps{static_cast<uint32_t>(rng.NextBelow(24))};
      size_t depth = rng.NextBelow(5);
      for (size_t d = 0; d < depth; ++d) {
        comps.push_back(static_cast<uint32_t>(rng.NextBelow(4)));
      }
      if (!used.insert(comps).second) continue;
      postings.push_back(
          {DeweyId(std::move(comps)), 0.05 + 0.95 * rng.NextDouble()});
    }
    dil.Put("kw" + std::to_string(w), std::move(postings));
  }
  return dil;
}

std::string NestedXml(size_t depth) {
  std::string xml;
  for (size_t i = 0; i < depth; ++i) xml += "<a>";
  xml += "x";
  for (size_t i = 0; i < depth; ++i) xml += "</a>";
  return xml;
}

/// Query-harness input: five option bytes (top_k, strategy, parallelism,
/// cache, pruning) followed by the query text.
std::string QuerySeed(std::string_view text) {
  std::string bytes = {'\x05', '\x00', '\x01', '\x01', '\x01'};
  bytes += text;
  return bytes;
}

/// Dewey-harness input: two ids, each a count byte then 4-byte components.
std::string DeweySeed(const std::vector<uint32_t>& a,
                      const std::vector<uint32_t>& b) {
  std::string bytes;
  for (const std::vector<uint32_t>* id : {&a, &b}) {
    bytes.push_back(static_cast<char>(id->size()));
    for (uint32_t c : *id) {
      for (int shift = 24; shift >= 0; shift -= 8) {
        bytes.push_back(static_cast<char>((c >> shift) & 0xff));
      }
    }
  }
  return bytes;
}

/// Re-signs a patched segment image: metadata CRC (stored at size-8,
/// covering header + section table) so tampered headers reach Validate's
/// semantic checks rather than dying at the integrity gate.
void ResignSegment(std::string* bytes) {
  if (bytes->size() < kSegmentMinBytes) return;
  uint32_t version = 0;
  std::memcpy(&version, bytes->data() + 4, sizeof(version));
  size_t table_end = SegmentTableEndFor(version);
  if (table_end > bytes->size()) return;
  uint32_t crc = Crc32(std::string_view(bytes->data(), table_end));
  std::memcpy(bytes->data() + bytes->size() - 8, &crc, sizeof(crc));
}

/// Re-signs a patched manifest image (trailing CRC over everything
/// before it) so tampered counts/fields reach DecodeManifest's semantic
/// validation rather than dying at the integrity gate.
std::string ResignManifest(std::string bytes) {
  if (bytes.size() >= 8) {
    uint32_t crc = Crc32(std::string_view(bytes.data(), bytes.size() - 4));
    std::memcpy(bytes.data() + bytes.size() - 4, &crc, sizeof(crc));
  }
  return bytes;
}

void WriteSeeds(const fs::path& out) {
  // xml_parse: real CDA shapes plus small syntax variants.
  Ontology snomed = BuildSnomedCardiologyFragment();
  CdaGeneratorOptions cda_options;
  cda_options.num_documents = 1;
  cda_options.mean_encounters = 2;
  CdaGenerator generator(snomed, cda_options);
  WriteFile(out / "xml_parse", "cda_generated.xml",
            WriteXml(CdaToXml(generator.GenerateDocument(0), 0)));
  WriteFile(out / "xml_parse", "small.xml",
            "<ClinicalDocument><section><title>Problems</title>"
            "<entry><Observation><value code=\"233604007\""
            " codeSystem=\"2.16.840.1.113883.6.96\""
            " displayName=\"Pneumonia\"/></Observation></entry>"
            "</section></ClinicalDocument>");
  WriteFile(out / "xml_parse", "prolog_comment.xml",
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?>"
            "<!-- note --><doc a=\"&lt;1&gt;\"><![CDATA[raw < text]]></doc>");
  WriteFile(out / "xml_parse", "nested_32.xml", NestedXml(32));

  // xodl_decode: encoded indexes of three sizes.
  Rng rng(42);
  WriteFile(out / "xodl_decode", "empty.xodl", EncodeIndex(XOntoDil()));
  WriteFile(out / "xodl_decode", "small.xodl",
            EncodeIndex(RandomDil(rng, 4, 20)));
  WriteFile(out / "xodl_decode", "large.xodl",
            EncodeIndex(RandomDil(rng, 16, 200)));

  // segment_open: both segment versions, plus a multi-block index so the
  // skip table and block-max sections are non-trivial.
  FlatDil small = RandomDil(rng, 6, 40).Freeze();
  FlatDil blocky = RandomDil(rng, 8, 400).Freeze();
  WriteFile(out / "segment_open", "small_v1.xoseg", EncodeSegment(small, 1));
  WriteFile(out / "segment_open", "small_v2.xoseg", EncodeSegment(small, 2));
  WriteFile(out / "segment_open", "blocky_v2.xoseg", EncodeSegment(blocky, 2));

  // query: option header + text in the harness's input layout.
  WriteFile(out / "query", "asthma.txt", QuerySeed("asthma bronchus"));
  WriteFile(out / "query", "drug.txt", QuerySeed("theophylline pulse 96"));
  WriteFile(out / "query", "empty.txt", QuerySeed(""));
  WriteFile(out / "query", "punct.txt",
            QuerySeed("\"asthma\"  ,;  BRONCHUS-attack"));

  // dewey: pairs covering equal, ancestor, sibling and cross-document.
  WriteFile(out / "dewey", "equal.bin", DeweySeed({1, 0, 2}, {1, 0, 2}));
  WriteFile(out / "dewey", "ancestor.bin", DeweySeed({1, 0}, {1, 0, 2, 4}));
  WriteFile(out / "dewey", "sibling.bin", DeweySeed({1, 0, 1}, {1, 0, 2}));
  WriteFile(out / "dewey", "cross_doc.bin", DeweySeed({1, 3}, {2, 3}));
  WriteFile(out / "dewey", "empty.bin", DeweySeed({}, {7}));

  // manifest: valid LSM segment manifests of increasing shape — empty
  // engine, single sealed segment, a post-compaction tiering (merged
  // segments leave id gaps), and high-word generation/id values.
  WriteFile(out / "manifest", "empty.xomf", EncodeManifest({1, {}}));
  WriteFile(out / "manifest", "single.xomf",
            EncodeManifest({1, {{0, 0, 8}}}));
  WriteFile(out / "manifest", "tiered.xomf",
            EncodeManifest(
                {7, {{5, 0, 16}, {3, 16, 20}, {4, 20, 21}, {6, 21, 24}}}));
  WriteFile(out / "manifest", "hiword.xomf",
            EncodeManifest({uint64_t{1} << 40,
                            {{uint64_t{1} << 36, 0, 3}, {2, 3, 5}}}));
}

void WriteHostile(const fs::path& out) {
  // xml_parse: the unbounded-recursion trigger — nesting far past any
  // sane document; the parser must refuse at max_depth, not blow the
  // stack.
  WriteFile(out / "xml_parse", "depth_bomb.xml", NestedXml(4096));
  WriteFile(out / "xml_parse", "unclosed_depth.xml",
            std::string(2048, '<') + "a>");

  // xodl_decode: count bombs with a valid trailing CRC, so they pass the
  // integrity gate and attack the reserve/validation logic directly.
  std::string entry_bomb;
  entry_bomb.append("XODL", 4);
  PutFixed32(&entry_bomb, 1);                         // version
  PutVarint64(&entry_bomb, uint64_t{1} << 40);        // entry count
  PutFixed32(&entry_bomb, Crc32(entry_bomb));
  WriteFile(out / "xodl_decode", "entry_bomb.xodl", entry_bomb);

  std::string posting_bomb;
  posting_bomb.append("XODL", 4);
  PutFixed32(&posting_bomb, 1);                       // version
  PutVarint64(&posting_bomb, 1);                      // one entry
  PutLengthPrefixed(&posting_bomb, "kw");
  PutVarint64(&posting_bomb, uint64_t{1} << 40);      // posting count
  PutFixed32(&posting_bomb, Crc32(posting_bomb));
  WriteFile(out / "xodl_decode", "posting_bomb.xodl", posting_bomb);

  // segment_open: a real segment with forged header fields, re-signed so
  // the metadata CRC passes and Validate's plausibility caps are what
  // stands between the header and a multi-terabyte reserve.
  Rng rng(43);
  std::string segment = EncodeSegment(RandomDil(rng, 6, 40).Freeze(), 2);

  std::string declared_bomb = segment;
  uint64_t huge_bytes = uint64_t{1} << 42;
  std::memcpy(declared_bomb.data() + 8, &huge_bytes, sizeof(huge_bytes));
  ResignSegment(&declared_bomb);
  WriteFile(out / "segment_open", "declared_size_bomb.xoseg", declared_bomb);

  std::string count_bomb = segment;
  uint64_t huge_count = uint64_t{1} << 40;
  std::memcpy(count_bomb.data() + 16, &huge_count, sizeof(huge_count));  // keywords
  std::memcpy(count_bomb.data() + 24, &huge_count, sizeof(huge_count));  // postings
  ResignSegment(&count_bomb);
  WriteFile(out / "segment_open", "header_count_bomb.xoseg", count_bomb);

  std::string truncated = segment.substr(0, kSegmentMinBytes + 7);
  WriteFile(out / "segment_open", "truncated.xoseg", truncated);

  // query: extreme option bytes with degenerate text.
  WriteFile(out / "query", "all_options.txt",
            std::string("\xff\xff\xff\xff\xff", 5) +
                std::string(512, ' '));

  // dewey: counts larger than the remaining bytes (components read as 0).
  WriteFile(out / "dewey", "overlong_count.bin", std::string("\xff\x01", 2));

  // manifest: the commit-point file of an LSM engine dir. Truncation
  // (the crash-mid-write shape), CRC-valid-but-hostile segment lists
  // (stale generation 0, tiling gap, duplicate id, empty range — all
  // pass the integrity gate, all must die in semantic validation), and a
  // re-signed count bomb attacking the size arithmetic.
  std::string good = EncodeManifest({3, {{0, 0, 4}, {1, 4, 8}}});
  WriteFile(out / "manifest", "truncated.xomf",
            good.substr(0, good.size() - 9));
  WriteFile(out / "manifest", "gen_zero.xomf",
            EncodeManifest({0, {{0, 0, 4}}}));
  WriteFile(out / "manifest", "tiling_gap.xomf",
            EncodeManifest({2, {{0, 0, 4}, {1, 5, 8}}}));
  WriteFile(out / "manifest", "dup_id.xomf",
            EncodeManifest({2, {{7, 0, 4}, {7, 4, 8}}}));
  WriteFile(out / "manifest", "empty_range.xomf",
            EncodeManifest({2, {{0, 0, 4}, {1, 4, 4}}}));
  std::string manifest_bomb = good;
  uint32_t huge32 = uint32_t{1} << 28;
  std::memcpy(manifest_bomb.data() + 16, &huge32, sizeof(huge32));  // count
  WriteFile(out / "manifest", "count_bomb.xomf",
            ResignManifest(std::move(manifest_bomb)));
}

}  // namespace
}  // namespace xontorank

int main(int argc, char** argv) {
  std::string out;
  bool hostile = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--hostile") {
      hostile = true;
    } else if (out.empty()) {
      out = std::move(arg);
    } else {
      std::fprintf(stderr, "usage: %s OUTDIR [--hostile]\n", argv[0]);
      return 2;
    }
  }
  if (out.empty()) {
    std::fprintf(stderr, "usage: %s OUTDIR [--hostile]\n", argv[0]);
    return 2;
  }
  if (hostile) {
    xontorank::WriteHostile(out);
  } else {
    xontorank::WriteSeeds(out);
  }
  std::printf("make_fuzz_corpus: wrote %s inputs under %s\n",
              hostile ? "hostile" : "seed", out.c_str());
  return 0;
}
