#!/usr/bin/env python3
"""xo_lint: repo-specific static checks clang-tidy cannot express.

Deterministic, dependency-free (stdlib only). Scans first-party C++
sources and enforces the XOntoRank contract invariants:

  raw-sync        std:: synchronization primitives (mutex, lock_guard,
                  condition_variable, ...) may appear only in
                  src/common/sync.h; everything else must use the
                  annotated wrappers so Clang thread-safety analysis
                  sees every lock.                      [scope: src/]
  bare-assert     assert() compiles out under NDEBUG, silently dropping
                  the invariant in Release; use XO_CHECK* (always-on)
                  or XO_DCHECK* (explicitly debug-only) from
                  src/common/check.h.                   [scope: src/]
  new-delete      raw new/delete expressions bypass RAII ownership; use
                  std::make_unique/std::make_shared or a container.
                  Leaked singletons and private-constructor factories
                  are the sanctioned exceptions — suppress those sites
                  explicitly.                           [scope: src/]
  include-guard   headers must guard with XONTORANK_<PATH>_H_ (path
                  relative to src/, or the full path for tests/, bench/,
                  examples/), uppercased, '/'->'_'.
                                    [scope: src/ tests/ bench/ examples/]
  voided-status   casting a Status/Result-returning call to (void)
                  launders the [[nodiscard]] build error into a silently
                  dropped failure; check it, propagate it
                  (XONTO_RETURN_IF_ERROR), or XO_CHECK_OK it.
                                    [scope: src/ tests/ bench/ examples/]
  posting-by-value  range-for iterating DilPosting by value in the query
                  layer copies a heap-owned DeweyId per posting; iterate
                  by const reference, or use DilCursor/DeweyRef on the
                  serving path.                      [scope: src/core/]
  raw-mmap        mmap/munmap/madvise may appear only in
                  src/storage/segment_file.* — the single RAII owner of
                  every mapping; everywhere else takes views through
                  SegmentFile so lifetime and advice policy stay in one
                  auditable place.                      [scope: src/]
  legacy-search   the pre-SearchOptions query surface — SearchRanked()
                  and the Search(query, <integer top_k>) convenience
                  overloads — was removed when the API was finalized;
                  call Search(query, SearchOptions) so execution options
                  (pruning, strategy, cache) stay on one struct.
                                    [scope: src/ tests/ bench/ examples/]
  untrusted-decode  reinterpreting raw bytes as typed data
                  (reinterpret_cast, C-style scalar-pointer casts) is how
                  wire/mapped input reaches typed code, so it is confined
                  to the audited+fuzzed decode layer: segment_file.*,
                  coding.*, flat_dil.cc. Everywhere else must go through
                  Decoder or a SegmentFile view; the sanctioned
                  exceptions (SIMD register loads over in-memory arrays,
                  the encode direction) carry explicit suppressions.
                                                        [scope: src/]

Suppression: a comment `// xo-lint: allow(rule)` (comma-separated list
accepted) suppresses those rules on its own line and on the next line.

Usage: tools/xo_lint.py [--root DIR] [--list-rules] [files...]
Exit:  0 clean · 1 violations found · 2 usage/internal error
"""

import argparse
import os
import re
import sys

# Functions whose Status/Result return must never be (void)-discarded.
# Keep in sync with the [[nodiscard]] surface in src/ headers.
FALLIBLE_FUNCTIONS = [
    "AddIsA",
    "AddRelationship",
    "CheckCda",
    "ConvertEmrToCda",
    "DecodeIndex",
    "DecodeIndexFlat",
    "DecodeManifest",
    "ExplainOntoScore",
    "ExplainResult",
    "LoadEngineDir",
    "LoadIndex",
    "LoadIndexFlat",
    "LoadManifest",
    "LoadOntology",
    "ParseOntologyText",
    "ParseXml",
    "SaveEngineDir",
    "SaveIndex",
    "SaveManifest",
    "SaveOntology",
    "SaveSnapshot",
    "Validate",
]

SCAN_ROOTS = ("src", "tests", "bench", "examples", "fuzz")

# The audited decode layer: the only src/ files allowed to reinterpret
# wire or mapped bytes as typed data (rule: untrusted-decode). Every one
# of them is covered by a fuzz/ harness.
UNTRUSTED_DECODE_OWNERS = (
    "src/storage/segment_file.",
    "src/storage/coding.",
    "src/core/flat_dil.cc",
)
CXX_EXTENSIONS = (".h", ".cc", ".cpp")

RAW_SYNC_RE = re.compile(
    r"\bstd::(?:recursive_|timed_|recursive_timed_|shared_|shared_timed_)?"
    r"(?:mutex|condition_variable(?:_any)?|lock_guard|unique_lock|"
    r"scoped_lock|shared_lock)\b"
)
BARE_ASSERT_RE = re.compile(r"(?<![A-Za-z0-9_])assert\s*\(")
NEW_RE = re.compile(r"(?<![A-Za-z0-9_])new(?![A-Za-z0-9_])")
DELETE_RE = re.compile(r"(?<![A-Za-z0-9_])delete(?![A-Za-z0-9_])")
DELETED_FN_RE = re.compile(r"=\s*delete\b")
OPERATOR_NEWDEL_RE = re.compile(r"\boperator\s+(?:new|delete)\b")
VOIDED_STATUS_RE = re.compile(
    r"\(\s*void\s*\)\s*"
    r"(?:[A-Za-z_][A-Za-z0-9_]*\s*(?:::|\.|->)\s*)*"
    r"(?:" + "|".join(FALLIBLE_FUNCTIONS) + r")\s*\("
)
POSTING_BY_VALUE_RE = re.compile(
    r"for\s*\(\s*(?:const\s+)?DilPosting\s+[A-Za-z_][A-Za-z0-9_]*\s*:"
)
RAW_MMAP_RE = re.compile(r"\b(?:mmap|munmap|madvise)\s*\(")
# The finalized-API rule: SearchRanked is gone, and a Search(...) call
# whose last argument is an integer literal is the removed top_k
# convenience shape (Search(query, 5)). The unified surface takes a
# SearchOptions struct, never a bare count.
LEGACY_SEARCH_RANKED_RE = re.compile(r"\bSearchRanked\s*\(")
LEGACY_SEARCH_TOPK_RE = re.compile(
    r"\bSearch\s*\(\s*[^()]*,\s*\d+[uUlL]*\s*\)"
)
REINTERPRET_CAST_RE = re.compile(r"\breinterpret_cast\s*<")
# A C-style cast to pointer-to-scalar ((const uint32_t*)p, (char*)buf):
# the other spelling of byte reinterpretation. Parameter declarations
# carry a name between '*' and ')' and don't match; abstract declarators
# are excluded by requiring an operand after the ')'.
CSTYLE_BYTE_CAST_RE = re.compile(
    r"\(\s*(?:const\s+)?(?:unsigned\s+|signed\s+)?"
    r"(?:u?int(?:8|16|32|64)_t|char|float|double)\s*\*+\s*\)\s*[A-Za-z_(&]"
)
SUPPRESS_RE = re.compile(r"xo-lint:\s*allow\(([^)]*)\)")

RULE_DOCS = {
    "raw-sync": "std:: sync primitives outside src/common/sync.h",
    "bare-assert": "assert() in src/ (use XO_CHECK*/XO_DCHECK*)",
    "new-delete": "raw new/delete expression in src/",
    "include-guard": "header guard must be XONTORANK_<PATH>_H_",
    "voided-status": "(void)-cast of a Status/Result-returning call",
    "posting-by-value": "DilPosting iterated by value in src/core",
    "raw-mmap": "mmap/munmap/madvise outside src/storage/segment_file.*",
    "legacy-search": "removed SearchRanked/Search(query, top_k) call shape",
    "untrusted-decode": "byte-reinterpreting cast outside the audited "
                        "decode layer (segment_file.*, coding.*, "
                        "flat_dil.cc)",
}


def strip_comments_and_strings(text):
    """Returns (stripped_text, {line_number: comment_text}).

    Comment and string/char-literal contents are replaced by spaces
    (newlines preserved) so rule regexes never fire inside them. Raw
    string literals R"delim(...)delim" are handled. Comment text is
    collected per line for suppression parsing.
    """
    out = []
    comments = {}
    i = 0
    n = len(text)
    line = 1

    def record_comment(lineno, chunk):
        comments[lineno] = comments.get(lineno, "") + chunk

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            if j == -1:
                j = n
            record_comment(line, text[i:j])
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            chunk = text[i:j]
            for k, part in enumerate(chunk.split("\n")):
                record_comment(line + k, part)
            out.append("".join(ch if ch == "\n" else " " for ch in chunk))
            line += chunk.count("\n")
            i = j
        elif c == "R" and nxt == '"':
            j = text.find("(", i + 2)
            if j == -1:
                out.append(c)
                i += 1
                continue
            delim = text[i + 2 : j]
            end = text.find(")" + delim + '"', j + 1)
            end = n if end == -1 else end + len(delim) + 2
            chunk = text[i:end]
            out.append("".join(ch if ch == "\n" else " " for ch in chunk))
            line += chunk.count("\n")
            i = end
        elif c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote or text[j] == "\n":
                    break
                j += 1
            j = min(j + 1, n)
            closing = quote if j - i >= 2 else ""
            out.append(quote + " " * (j - i - 2) + closing)
            i = j
        else:
            out.append(c)
            if c == "\n":
                line += 1
            i += 1
    return "".join(out), comments


def parse_suppressions(comments):
    """{line: set(rules)} — a suppression covers its line and the next."""
    allowed = {}
    for lineno, chunk in comments.items():
        for match in SUPPRESS_RE.finditer(chunk):
            rules = {r.strip() for r in match.group(1).split(",") if r.strip()}
            for covered in (lineno, lineno + 1):
                allowed.setdefault(covered, set()).update(rules)
    return allowed


def expected_guard(relpath):
    path = relpath[len("src/") :] if relpath.startswith("src/") else relpath
    stem = os.path.splitext(path)[0]
    return "XONTORANK_" + re.sub(r"[^A-Za-z0-9]", "_", stem).upper() + "_H_"


class Linter:
    def __init__(self, root):
        self.root = root
        self.findings = []

    def report(self, relpath, lineno, rule, message, allowed):
        if rule in allowed.get(lineno, set()):
            return
        self.findings.append((relpath, lineno, rule, message))

    def lint_file(self, relpath):
        path = os.path.join(self.root, relpath)
        try:
            text = open(path, encoding="utf-8", errors="replace").read()
        except OSError as err:
            print(f"xo_lint: cannot read {relpath}: {err}", file=sys.stderr)
            return
        stripped, comments = strip_comments_and_strings(text)
        allowed = parse_suppressions(comments)
        lines = stripped.split("\n")
        in_src = relpath.startswith("src/")
        in_core = relpath.startswith("src/core/")
        is_sync_header = relpath == "src/common/sync.h"
        is_mapping_owner = relpath.startswith("src/storage/segment_file.")
        is_decode_owner = relpath.startswith(UNTRUSTED_DECODE_OWNERS)

        for idx, code in enumerate(lines, start=1):
            if in_src and not is_sync_header and RAW_SYNC_RE.search(code):
                self.report(
                    relpath, idx, "raw-sync",
                    "raw std:: synchronization primitive; use the annotated "
                    "wrappers in common/sync.h", allowed)
            if in_src and BARE_ASSERT_RE.search(code):
                self.report(
                    relpath, idx, "bare-assert",
                    "assert() vanishes under NDEBUG; use XO_CHECK* or "
                    "XO_DCHECK* from common/check.h", allowed)
            if in_src and not OPERATOR_NEWDEL_RE.search(code):
                if NEW_RE.search(code):
                    self.report(
                        relpath, idx, "new-delete",
                        "raw new expression; use std::make_unique/"
                        "make_shared", allowed)
                if DELETE_RE.search(code) and not DELETED_FN_RE.search(code):
                    self.report(
                        relpath, idx, "new-delete",
                        "raw delete expression; prefer RAII ownership",
                        allowed)
            if VOIDED_STATUS_RE.search(code):
                self.report(
                    relpath, idx, "voided-status",
                    "(void)-cast discards a Status/Result; check it, "
                    "XONTO_RETURN_IF_ERROR it, or XO_CHECK_OK it", allowed)
            if in_src and not is_mapping_owner and RAW_MMAP_RE.search(code):
                self.report(
                    relpath, idx, "raw-mmap",
                    "raw mmap/munmap/madvise call; SegmentFile "
                    "(src/storage/segment_file.h) is the single owner of "
                    "file mappings — take a view through it", allowed)
            if LEGACY_SEARCH_RANKED_RE.search(code) or \
                    LEGACY_SEARCH_TOPK_RE.search(code):
                self.report(
                    relpath, idx, "legacy-search",
                    "the SearchRanked/Search(query, top_k) overloads were "
                    "removed; call Search(query, SearchOptions) — set "
                    "top_k (and pruning, strategy, cache) on the options "
                    "struct", allowed)
            if in_src and not is_decode_owner and (
                    REINTERPRET_CAST_RE.search(code) or
                    CSTYLE_BYTE_CAST_RE.search(code)):
                self.report(
                    relpath, idx, "untrusted-decode",
                    "byte-reinterpreting cast outside the audited decode "
                    "layer; parse through Decoder (storage/coding.h) or a "
                    "SegmentFile view so every wire-byte interpretation "
                    "stays in the fuzzed files", allowed)
            if in_core and POSTING_BY_VALUE_RE.search(code):
                self.report(
                    relpath, idx, "posting-by-value",
                    "DilPosting iterated by value copies a heap DeweyId "
                    "per posting; iterate by const reference or use "
                    "DilCursor", allowed)

        if relpath.endswith(".h"):
            self.lint_include_guard(relpath, lines, allowed)

    def lint_include_guard(self, relpath, lines, allowed):
        want = expected_guard(relpath)
        ifndef_line = 0
        guard = None
        for idx, code in enumerate(lines, start=1):
            stripped = code.strip()
            if not stripped:
                continue
            match = re.match(r"#\s*ifndef\s+([A-Za-z0-9_]+)\s*$", stripped)
            if match:
                ifndef_line, guard = idx, match.group(1)
            break
        if guard is None:
            self.report(relpath, 1, "include-guard",
                        f"missing include guard; expected #ifndef {want}",
                        allowed)
            return
        if guard != want:
            self.report(relpath, ifndef_line, "include-guard",
                        f"guard is {guard}; expected {want}", allowed)
            return
        define = lines[ifndef_line].strip() if ifndef_line < len(lines) else ""
        if not re.match(r"#\s*define\s+" + re.escape(want) + r"\s*$", define):
            self.report(relpath, ifndef_line + 1, "include-guard",
                        f"#ifndef {want} must be followed by #define {want}",
                        allowed)


def collect_files(root):
    files = []
    for scan_root in SCAN_ROOTS:
        top = os.path.join(root, scan_root)
        for dirpath, dirnames, filenames in os.walk(top):
            dirnames.sort()
            for name in sorted(filenames):
                if name.endswith(CXX_EXTENSIONS):
                    files.append(
                        os.path.relpath(os.path.join(dirpath, name), root))
    return files


def main(argv):
    parser = argparse.ArgumentParser(prog="xo_lint.py", add_help=True)
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of tools/)")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("files", nargs="*",
                        help="paths relative to root (default: full scan)")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in sorted(RULE_DOCS):
            print(f"{rule:16} {RULE_DOCS[rule]}")
        return 0

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    root = os.path.abspath(root)
    if not os.path.isdir(root):
        print(f"xo_lint: no such root: {root}", file=sys.stderr)
        return 2

    if args.files:
        files = []
        for f in args.files:
            rel = os.path.relpath(os.path.abspath(f), root) \
                if os.path.isabs(f) else f
            files.append(rel.replace(os.sep, "/"))
    else:
        files = collect_files(root)

    linter = Linter(root)
    for relpath in sorted(files):
        linter.lint_file(relpath.replace(os.sep, "/"))

    for relpath, lineno, rule, message in linter.findings:
        print(f"{relpath}:{lineno}: [{rule}] {message}")
    if linter.findings:
        print(f"xo_lint: {len(linter.findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"xo_lint: clean ({len(files)} files)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
