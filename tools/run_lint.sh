#!/usr/bin/env bash
# Runs the repo lint suite: xo_lint.py (always — Python only), then
# clang-tidy (config: .clang-tidy) over every first-party translation
# unit in src/ tests/ bench/ examples/, generating compile_commands.json
# first. Exits non-zero when xo_lint finds a violation or any
# WarningsAsErrors check fires; the clang-tidy half skips gracefully
# when clang-tidy is absent.
#
# Usage: tools/run_lint.sh [extra clang-tidy args...]
# Env:   CLANG_TIDY=clang-tidy-18  LINT_BUILD_DIR=build-lint  LINT_JOBS=8
set -euo pipefail
cd "$(dirname "$0")/.."

# The repo-specific lint needs only Python, so it always runs — even on
# machines without clang. Rules and suppression syntax: tools/xo_lint.py.
echo "run_lint.sh: xo_lint.py"
python3 tools/xo_lint.py

TIDY="${CLANG_TIDY:-}"
if [[ -z "${TIDY}" ]]; then
  for candidate in clang-tidy clang-tidy-20 clang-tidy-19 clang-tidy-18 \
                   clang-tidy-17 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
    if command -v "${candidate}" >/dev/null 2>&1; then
      TIDY="${candidate}"
      break
    fi
  done
fi
if [[ -z "${TIDY}" ]]; then
  echo "run_lint.sh: clang-tidy not found; skipping lint." >&2
  echo "run_lint.sh: install clang-tidy (apt-get install clang-tidy) to run the gate locally." >&2
  exit 0
fi

# Locate a compilation database: the primary build tree exports one
# (CMAKE_EXPORT_COMPILE_COMMANDS is ON in the top-level CMakeLists), so
# reuse it when present; otherwise configure a dedicated lint tree.
BUILD_DIR="${LINT_BUILD_DIR:-}"
if [[ -z "${BUILD_DIR}" ]]; then
  if [[ -f build/compile_commands.json ]]; then
    BUILD_DIR=build
  else
    BUILD_DIR=build-lint
  fi
fi
if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  cmake -B "${BUILD_DIR}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

# Every first-party TU in the compilation database (third-party code, if it
# ever appears, lives outside these four roots and is skipped).
mapfile -t FILES < <(
  python3 - "${BUILD_DIR}/compile_commands.json" <<'PYEOF'
import json
import sys

root_markers = ("/src/", "/tests/", "/bench/", "/examples/")
seen = set()
for entry in json.load(open(sys.argv[1])):
    path = entry["file"]
    if any(marker in path for marker in root_markers) and path not in seen:
        seen.add(path)
        print(path)
PYEOF
)

if [[ "${#FILES[@]}" -eq 0 ]]; then
  echo "run_lint.sh: no translation units found in ${BUILD_DIR}" >&2
  exit 1
fi

JOBS="${LINT_JOBS:-$(nproc)}"
echo "run_lint.sh: ${TIDY} over ${#FILES[@]} files (${JOBS} jobs)"

# xargs fans the TUs out; any non-zero clang-tidy exit (a WarningsAsErrors
# hit) makes xargs — and the script — fail.
printf '%s\n' "${FILES[@]}" |
  xargs -P "${JOBS}" -n 4 "${TIDY}" -p "${BUILD_DIR}" --quiet "$@"

echo "run_lint.sh: clean"
