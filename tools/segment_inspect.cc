// segment_inspect: dump a segment file's header, section table and CRC
// state — or a whole LSM engine directory's manifest — for debugging and
// forensics.
//
//   segment_inspect <file.xoseg> [--no-verify]
//   segment_inspect <engine-dir> [--no-verify]
//
// File mode prints the parsed header, one row per section (offset,
// length, element count, stored CRC) and per-list summary stats.
// Directory mode decodes the binary MANIFEST (the LSM commit point,
// DESIGN.md §15) and prints the generation plus one row per live
// segment (id, doc range, file, bytes, keywords, postings), then runs a
// verify pass over every listed segment: full CRC validation through
// SegmentFile::Open and a posting walk checking that each document id
// lies inside the segment's manifest-declared range. With --no-verify
// the section CRC pass and the posting walk are skipped (metadata CRCs
// are always checked), which is the fast way to look at a large engine.
// Exit status: 0 for a valid file/directory, 1 for unreadable/corrupt
// (the validation error is printed verbatim — the same Status a serving
// load would report).
//
// Everything goes through SegmentFile's public API: this tool has no mmap
// calls of its own (xo_lint's raw-mmap rule keeps it that way).

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/simd_kernels.h"
#include "storage/manifest.h"
#include "storage/segment_file.h"

using namespace xontorank;

namespace {

/// Directory mode: manifest dump + per-segment verify. Returns the exit
/// status.
int InspectEngineDir(const std::string& dir, bool verify) {
  auto manifest = LoadManifest(dir + "/MANIFEST");
  if (!manifest.ok()) {
    std::fprintf(stderr, "%s\n", manifest.status().ToString().c_str());
    return 1;
  }
  std::printf("%s: LSM engine dir, generation %" PRIu64 ", %zu segment(s)%s\n",
              dir.c_str(), manifest->generation, manifest->segments.size(),
              verify ? "" : " (section CRCs / doc ranges not checked)");
  std::printf("\n  %10s %10s %10s %-24s %12s %10s %12s\n", "id", "first_doc",
              "end_doc", "file", "bytes", "keywords", "postings");
  bool ok = true;
  for (const ManifestSegment& entry : manifest->segments) {
    std::string name =
        "seg-" + std::to_string(entry.id) + ".xoseg";
    SegmentFile::Options options;
    options.advice = SegmentFile::Options::Advice::kSequential;
    options.verify_checksums = verify;
    auto segment = SegmentFile::Open(dir + "/" + name, options);
    if (!segment.ok()) {
      std::printf("  %10" PRIu64 " %10u %10u %-24s  INVALID: %s\n", entry.id,
                  entry.first_doc, entry.end_doc, name.c_str(),
                  segment.status().ToString().c_str());
      ok = false;
      continue;
    }
    const SegmentFile& seg = **segment;
    std::printf("  %10" PRIu64 " %10u %10u %-24s %12zu %10" PRIu64
                " %12" PRIu64 "\n",
                entry.id, entry.first_doc, entry.end_doc, name.c_str(),
                seg.file_bytes(), seg.header().keyword_count,
                seg.header().total_postings);
    if (!verify) continue;
    // Doc-range pass: every posting's document id must lie inside the
    // manifest-declared [first_doc, end_doc) — a CRC-clean segment listed
    // with the wrong range would serve results under the wrong global doc
    // ids, so the tiling claim is checked against the bytes.
    FlatDil view = seg.MakeView();
    for (uint32_t l = 0; l < view.keyword_count() && ok; ++l) {
      for (DilCursor cursor = view.OpenCursor(l); !cursor.AtEnd();
           cursor.Next()) {
        if (cursor.doc() < entry.first_doc || cursor.doc() >= entry.end_doc) {
          std::printf("       ^ INVALID: posting doc %u outside manifest "
                      "range [%u, %u)\n",
                      cursor.doc(), entry.first_doc, entry.end_doc);
          ok = false;
          break;
        }
      }
    }
  }
  std::printf("\n  verify: %s\n", !verify   ? "skipped (--no-verify)"
                                  : ok      ? "all segments OK"
                                            : "FAILED");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  bool verify = true;
  std::string path;
  for (const std::string& arg : args) {
    if (arg == "--no-verify") {
      verify = false;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr,
                   "usage: segment_inspect <file.xoseg | engine-dir> "
                   "[--no-verify]\n");
      return 1;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: segment_inspect <file.xoseg | engine-dir> "
                 "[--no-verify]\n");
    return 1;
  }

  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) {
    return InspectEngineDir(path, verify);
  }

  SegmentFile::Options options;
  options.advice = SegmentFile::Options::Advice::kSequential;
  options.verify_checksums = verify;
  auto segment = SegmentFile::Open(path, options);
  if (!segment.ok()) {
    std::fprintf(stderr, "%s\n", segment.status().ToString().c_str());
    return 1;
  }
  const SegmentFile& seg = **segment;
  const SegmentFile::Header& h = seg.header();

  std::printf("%s: %zu bytes, segment v%u%s\n", seg.path().c_str(),
              seg.file_bytes(), h.version,
              verify ? " (all CRCs verified)" : " (section CRCs not checked)");
  std::printf("  keywords %" PRIu64 "  postings %" PRIu64 "  blocks %" PRIu64
              "  flags 0x%08x\n",
              h.keyword_count, h.total_postings, h.block_count, h.flags);

  std::printf("\n  %-16s %10s %12s %12s %10s\n", "section", "offset", "bytes",
              "elements", "crc32");
  size_t payload = 0;
  for (const SegmentFile::SectionInfo& info : seg.sections()) {
    std::printf("  %-16s %10" PRIu64 " %12" PRIu64 " %12" PRIu64 " 0x%08x\n",
                info.name, info.offset, info.bytes, info.elements, info.crc32);
    payload += info.bytes;
  }
  std::printf("  payload %zu bytes, %zu bytes alignment padding + metadata\n",
              payload, seg.file_bytes() - payload);

  // Per-list shape summary through the served view — exercises the same
  // pointer-fixup path queries use.
  FlatDil view = seg.MakeView();
  size_t max_list = 0, singleton_lists = 0;
  for (uint32_t l = 0; l < view.keyword_count(); ++l) {
    size_t n = view.ListSize(l);
    if (n > max_list) max_list = n;
    if (n == 1) ++singleton_lists;
  }
  if (view.total_postings() > 0) {
    std::printf("\n  lists: %zu singleton, longest %zu postings, "
                "%.1f avg, %.2f bytes/posting\n",
                singleton_lists, max_list,
                static_cast<double>(view.total_postings()) /
                    static_cast<double>(view.keyword_count()),
                static_cast<double>(seg.file_bytes()) /
                    static_cast<double>(view.total_postings()));
  }

  // Block-max column (v2+): the per-block score upper bounds that drive
  // top-k pruning. A v1 file has no such section — say so explicitly, and
  // note that queries served from it fall back to exact scoring.
  std::span<const float> block_max = view.sections().block_max;
  if (!seg.has_block_max()) {
    std::printf("\n  block-max: none — v1 (no block-max); queries over this "
                "segment score exactly, no pruning\n");
  } else if (block_max.empty()) {
    std::printf("\n  block-max: 0 blocks (empty segment)\n");
  } else {
    float hi = MaxFloat(block_max.data(), block_max.size());
    float lo = block_max[0];
    double sum = 0.0;
    for (float v : block_max) {
      if (v < lo) lo = v;
      sum += v;
    }
    std::printf("\n  block-max: %zu blocks, score bounds min %.4f / avg %.4f "
                "/ max %.4f\n",
                block_max.size(), lo,
                sum / static_cast<double>(block_max.size()), hi);
  }
  return 0;
}
