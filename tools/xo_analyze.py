#!/usr/bin/env python3
"""xo_analyze: AST-grounded lifetime & invariant analysis for src/.

Where tools/xo_lint.py matches single lines, this tool parses real
declarations, scopes, types and statement order, and enforces the
zero-copy serving path's lifetime and concurrency invariants as named
rules:

  view-escape         a function whose return type is a non-owning view
                      (string_view, span, DeweyRef, DilListRef) returns —
                      or a method stores into a view member — data derived
                      from a local owning object or by-value parameter;
                      the storage dies with the frame and the view
                      dangles.                            [scope: src/]
  backing-before-view a class holding (directly or transitively) a member
                      that can alias external mapped memory — FlatDil,
                      FlatDil::Sections, or a class that itself holds one
                      without pinning it — must also hold a backing
                      member (shared_ptr<const void>, SegmentFile, or a
                      smart pointer to one) declared BEFORE the first
                      such member: members destroy in reverse order, so
                      the mapping outlives every view (the IndexSnapshot
                      pattern, DESIGN.md §11).            [scope: src/]
  snapshot-pin        calling .get() directly on a shared_ptr returned by
                      value (XOntoRank::snapshot(), make_shared, ...) and
                      storing the raw pointer: the temporary shared_ptr
                      dies at the end of the statement, so nothing pins
                      the snapshot the raw pointer addresses. Requests
                      must hold the shared_ptr itself.    [scope: src/]
  lock-order          cross-TU partial-order check over the named
                      process-wide locks (engine_store SaveMutex before
                      index_store FileMutex / segment_writer
                      SegmentFileMutex / manifest ManifestFileMutex):
                      while one is held, no direct or
                      transitive callee may acquire a lock of lower or
                      equal level (DESIGN.md §9).         [scope: src/]
  view-outlives-unmap a view created from a SegmentFile (MakeView(),
                      sections()) is used after the SegmentFile local is
                      reset, reassigned, moved from, or destroyed by
                      scope exit — use-after-unmap.       [scope: src/]
  unjustified-allow   every `xo-analyze: allow(rule)` suppression must
                      name a known rule and carry a one-line
                      justification after the closing parenthesis.

Frontends. Rules run over a small neutral IR (classes with ordered typed
members, functions with typed locals, statements, calls and returns)
that two frontends can produce:

  builtin   a dependency-free C++ tokenizer + declaration/statement
            parser tuned to this repo's style. Always available; the
            default gate everywhere, including GCC-only machines.
  clang     libclang via the Python `clang.cindex` bindings, driven by
            build/compile_commands.json — the ground-truth AST. Used
            automatically when importable (CI pins it); skips gracefully
            when absent, mirroring run_lint.sh's contract.

Suppression: `// xo-analyze: allow(rule)` (comma-separated list) covers
its own line, any directly following comment-only lines, and the first
code line after them; it must carry a justification.

Usage: tools/xo_analyze.py [--root DIR] [--frontend auto|builtin|clang]
                           [--compile-commands PATH] [--baseline PATH]
                           [--write-baseline PATH] [--list-rules]
                           [--self-test] [files...]
Exit:  0 clean (or frontend skipped) · 1 findings · 2 usage/internal error
"""

import argparse
import json
import os
import re
import sys
import tempfile

# ---------------------------------------------------------------------------
# Configuration: the type vocabulary the rules reason about.
# ---------------------------------------------------------------------------

# Return types that are non-owning views over someone else's storage.
VIEW_RETURN_TYPES = {"string_view", "span", "DeweyRef", "DilListRef"}

# Local/parameter types that own their storage (frame-lifetime when local).
OWNING_TYPES = {
    "string", "vector", "array", "deque", "map", "set", "unordered_map",
    "unordered_set", "ostringstream", "stringstream",
    "XOntoDil", "FlatDil", "DeweyId", "DilEntry", "Corpus", "DilPosting",
}

# Types that can alias external mapped memory when held by value. Holding
# one (transitively) obliges the holder to pin a backing member first.
MAPPED_VIEW_ROOTS = {"FlatDil", "Sections"}

# Member types that count as the backing keep-alive.
BACKING_MEMBER_MARKERS = ("SegmentFile",)  # by value or smart pointer
SMART_PTRS = {"shared_ptr", "unique_ptr", "weak_ptr"}

# Raw (non-propagating) view member types: ordering is checked when a
# backing member coexists, but they do not by themselves demand one
# (cursors and refs are transient by design).
RAW_VIEW_MEMBER_TYPES = {"string_view", "span", "DeweyRef", "DilListRef",
                         "DilCursor"}

# The documented partial order over the named process-wide locks: a lock
# may only be acquired while holding locks of strictly LOWER level.
LOCK_LEVELS = {
    "SaveMutex": (1, "engine_store.cc whole-directory save lock"),
    "FileMutex": (2, "index_store.cc temp+rename file lock"),
    "SegmentFileMutex": (2, "segment_writer.cc temp+rename file lock"),
    "ManifestFileMutex": (2, "manifest.cc temp+rename file lock"),
}

# shared_ptr factories that are always pin sources for snapshot-pin.
PTR_FACTORIES = {"make_shared", "make_unique"}

# SegmentFile methods whose results alias the mapping (view-outlives-unmap).
VIEW_MAKERS = {"MakeView", "sections"}

RULE_DOCS = {
    "view-escape": "view return/store derived from frame-local owning "
                   "storage",
    "backing-before-view": "mapped-view-capable member without a backing "
                           "member declared before it",
    "snapshot-pin": ".get() on a temporary shared_ptr stored as a raw "
                    "pointer (unpinned snapshot)",
    "lock-order": "named lock acquired under a lock of equal or higher "
                  "level (SaveMutex < FileMutex/SegmentFileMutex/"
                  "ManifestFileMutex)",
    "view-outlives-unmap": "SegmentFile view used after reset/move/scope "
                           "death of its mapping",
    "unjustified-allow": "xo-analyze suppression without a justification "
                         "or naming an unknown rule",
}

SUPPRESS_RE = re.compile(r"xo-analyze:\s*allow\(([^)]*)\)(.*)")

CXX_EXTENSIONS = (".h", ".cc", ".cpp")

# ---------------------------------------------------------------------------
# Token layer.
# ---------------------------------------------------------------------------

KEYWORDS = {
    "alignas", "alignof", "auto", "bool", "break", "case", "catch", "char",
    "class", "const", "constexpr", "consteval", "constinit", "continue",
    "decltype", "default", "delete", "do", "double", "else", "enum",
    "explicit", "export", "extern", "false", "final", "float", "for",
    "friend", "goto", "if", "inline", "int", "long", "mutable", "namespace",
    "new", "noexcept", "nullptr", "operator", "override", "private",
    "protected", "public", "register", "return", "short", "signed",
    "sizeof", "static", "static_assert", "static_cast", "const_cast",
    "dynamic_cast", "reinterpret_cast", "struct", "switch", "template",
    "this", "thread_local", "throw", "true", "try", "typedef", "typeid",
    "typename", "union", "unsigned", "using", "virtual", "void",
    "volatile", "while",
}

# Fundamental type keywords usable as the first token of a declaration.
TYPE_KEYWORDS = {"auto", "bool", "char", "double", "float", "int", "long",
                 "short", "signed", "unsigned", "void", "size_t"}

MULTI_PUNCT = ("->*", "...", "::", "->", "==", "!=", "<=", ">=", "+=",
               "-=", "*=", "/=", "%=", "&=", "|=", "^=", "&&", "||",
               "++", "--")

IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
# Attribute-macro heuristic: ALL_CAPS with an underscore (XO_GUARDED_BY,
# XO_CAPABILITY, ...). Requiring the underscore keeps single-letter and
# plain-caps class names (C, DAG) parsing as ordinary identifiers.
ALLCAPS_RE = re.compile(r"^[A-Z][A-Z0-9]*_[A-Z0-9_]*$")


class Token:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind, text, line):
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self):
        return f"{self.text}@{self.line}"


def tokenize(text):
    """Returns (tokens, comments) — comments is {line: concatenated text}.

    Strings/chars become empty-literal tokens, comments are recorded for
    suppression parsing, preprocessor lines (with continuations) are
    dropped, raw strings handled.
    """
    tokens = []
    comments = {}
    i, n, line = 0, len(text), 1
    line_has_token = False

    def record_comment(lineno, chunk):
        comments[lineno] = comments.get(lineno, "") + chunk

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "\n":
            line += 1
            line_has_token = False
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            if j == -1:
                j = n
            record_comment(line, text[i:j])
            i = j
            continue
        if c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            chunk = text[i:j]
            for k, part in enumerate(chunk.split("\n")):
                record_comment(line + k, part)
            line += chunk.count("\n")
            i = j
            continue
        if c == "#" and not line_has_token:
            # Preprocessor directive: skip to end of line, honoring
            # backslash continuations.
            while i < n:
                j = text.find("\n", i)
                if j == -1:
                    i = n
                    break
                # A continuation ends the line with a backslash.
                k = j - 1
                while k >= 0 and text[k] in " \t\r":
                    k -= 1
                line += 1
                i = j + 1
                if k < 0 or text[k] != "\\":
                    break
            line_has_token = False
            continue
        if c == "R" and nxt == '"':
            j = text.find("(", i + 2)
            if j != -1:
                delim = text[i + 2:j]
                end = text.find(")" + delim + '"', j + 1)
                end = n if end == -1 else end + len(delim) + 2
                chunk = text[i:end]
                tokens.append(Token("str", '""', line))
                line += chunk.count("\n")
                line_has_token = True
                i = end
                continue
        if c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote or text[j] == "\n":
                    break
                j += 1
            j = min(j + 1, n)
            tokens.append(Token("str" if quote == '"' else "chr",
                                quote + quote, line))
            line_has_token = True
            i = j
            continue
        m = IDENT_RE.match(text, i)
        if m:
            tokens.append(Token("id", m.group(0), line))
            line_has_token = True
            i = m.end()
            continue
        if c.isdigit() or (c == "." and nxt.isdigit()):
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] in "._'+-"
                             and text[j - 1] in "eEpP"):
                if text[j] in "+-" and text[j - 1] not in "eEpP":
                    break
                j += 1
            tokens.append(Token("num", text[i:j], line))
            line_has_token = True
            i = j
            continue
        matched = False
        for p in MULTI_PUNCT:
            if text.startswith(p, i):
                tokens.append(Token("punct", p, line))
                i += len(p)
                matched = True
                break
        if not matched:
            tokens.append(Token("punct", c, line))
            i += 1
        line_has_token = True
    return tokens, comments


OPEN_TO_CLOSE = {"(": ")", "[": "]", "{": "}"}


def match_balanced(toks, i):
    """toks[i] is an opener; returns index one past its matching closer."""
    opener = toks[i].text
    closer = OPEN_TO_CLOSE[opener]
    depth = 0
    j = i
    n = len(toks)
    while j < n:
        t = toks[j].text
        if t == opener:
            depth += 1
        elif t == closer:
            depth -= 1
            if depth == 0:
                return j + 1
        j += 1
    return n


def idents(toks):
    return {t.text for t in toks if t.kind == "id" and t.text not in KEYWORDS}


def calls(toks):
    """(name, line) for every identifier directly followed by '('. Skips
    C++ keywords and ALL_CAPS macro invocations."""
    out = []
    for i, t in enumerate(toks[:-1]):
        if (t.kind == "id" and t.text not in KEYWORDS
                and not ALLCAPS_RE.match(t.text)
                and toks[i + 1].text == "("):
            out.append((t.text, t.line))
    return out


def find_subseq(toks, texts):
    """Index of the first occurrence of the exact token-text sequence."""
    n, m = len(toks), len(texts)
    for i in range(n - m + 1):
        if all(toks[i + k].text == texts[k] for k in range(m)):
            return i
    return -1


# ---------------------------------------------------------------------------
# IR.
# ---------------------------------------------------------------------------

class Member:
    __slots__ = ("name", "type_tokens", "line")

    def __init__(self, name, type_tokens, line):
        self.name = name
        self.type_tokens = type_tokens  # list of token texts
        self.line = line


class ClassDecl:
    __slots__ = ("name", "qualified", "members", "line", "path")

    def __init__(self, name, qualified, line, path):
        self.name = name
        self.qualified = qualified
        self.members = []
        self.line = line
        self.path = path


class Stmt:
    """kind: 'decl' | 'expr' | 'return' | 'block'."""
    __slots__ = ("kind", "line", "tokens", "type_tokens", "name", "init",
                 "children")

    def __init__(self, kind, line, tokens=None, type_tokens=None, name=None,
                 init=None, children=None):
        self.kind = kind
        self.line = line
        self.tokens = tokens or []
        self.type_tokens = type_tokens or []
        self.name = name
        self.init = init or []
        self.children = children or []


class FunctionDecl:
    __slots__ = ("name", "qualified", "class_name", "return_type", "params",
                 "body", "line", "path")

    def __init__(self, name, qualified, class_name, return_type, params,
                 body, line, path):
        self.name = name
        self.qualified = qualified
        self.class_name = class_name  # enclosing class qualified name or None
        self.return_type = return_type  # list of token texts
        self.params = params  # list of (type_texts, name_or_None)
        self.body = body  # list of Stmt, or None for a pure declaration
        self.line = line
        self.path = path


class FileIR:
    __slots__ = ("path", "classes", "functions", "suppressions",
                 "allow_issues")

    def __init__(self, path):
        self.path = path
        self.classes = []
        self.functions = []
        self.suppressions = {}  # line -> set(rules)
        self.allow_issues = []  # (line, message)


# ---------------------------------------------------------------------------
# Suppressions (textual layer, shared by both frontends).
# ---------------------------------------------------------------------------

def parse_suppressions(comments, token_lines=frozenset()):
    """Returns ({line: set(rules)}, [(line, message)]) — the second item
    lists unjustified or unknown-rule allow() comments.

    Coverage: the allow() line, any immediately-following comment-only
    lines (so a multi-line justification stays one suppression), and the
    first code line after the comment block."""
    allowed = {}
    issues = []
    for lineno in sorted(comments):
        for match in SUPPRESS_RE.finditer(comments[lineno]):
            rules = {r.strip() for r in match.group(1).split(",")
                     if r.strip()}
            unknown = sorted(r for r in rules if r not in RULE_DOCS)
            if unknown:
                issues.append(
                    (lineno, "allow() names unknown rule(s): "
                     + ", ".join(unknown)))
            justification = match.group(2).strip(" -—:;.\t")
            if len(re.sub(r"[^A-Za-z0-9]", "", justification)) < 3:
                issues.append(
                    (lineno, "allow() without a one-line justification "
                     "after the closing parenthesis"))
            end = lineno
            while end + 1 in comments and end + 1 not in token_lines:
                end += 1
            for covered in range(lineno, end + 2):
                allowed.setdefault(covered, set()).update(rules)
    return allowed, issues


# ---------------------------------------------------------------------------
# Builtin frontend: a recursive-descent parser for the repo's C++ subset.
# ---------------------------------------------------------------------------

DECL_QUALIFIERS = {"static", "const", "constexpr", "mutable", "inline",
                   "thread_local", "volatile", "register", "explicit",
                   "virtual", "extern", "typename"}

NON_TYPE_STARTERS = {"return", "delete", "throw", "goto", "break",
                     "continue", "new", "case", "default", "else", "do",
                     "try", "catch", "sizeof", "this", "operator",
                     "static_cast", "const_cast", "dynamic_cast",
                     "reinterpret_cast", "co_return", "co_await",
                     "co_yield"}


def consume_type(toks, i):
    """Consumes a type at toks[i]: qualified id chain with balanced
    template args, then ptr/ref/const suffixes. Returns the index one past
    the type, or None when toks[i] cannot start a type."""
    n = len(toks)
    if i >= n:
        return None
    if toks[i].text == "::":
        i += 1
    if i >= n or toks[i].kind != "id":
        return None
    if toks[i].text in NON_TYPE_STARTERS:
        return None
    if toks[i].text in KEYWORDS and toks[i].text not in TYPE_KEYWORDS:
        return None
    # Fundamental-type keyword runs: `unsigned long long`, `const char`.
    if toks[i].text in TYPE_KEYWORDS:
        i += 1
        while i < n and toks[i].text in TYPE_KEYWORDS:
            i += 1
    else:
        i += 1
    while True:
        if i < n and toks[i].text == "<":
            j = close_angle(toks, i)
            if j is None:
                break
            i = j
        if i + 1 < n and toks[i].text == "::" and toks[i + 1].kind == "id":
            i += 2
            continue
        break
    while i < n and toks[i].text in ("*", "&", "const", "volatile"):
        i += 1
    return i


def close_angle(toks, i):
    """toks[i] == '<'; finds the matching '>' treating (),[],{} as opaque.
    Returns the index one past it, or None when this '<' is not a
    template-argument list."""
    depth = 0
    j = i
    n = len(toks)
    while j < n:
        t = toks[j].text
        if t in OPEN_TO_CLOSE and t != "{":
            j = match_balanced(toks, j)
            continue
        if t == "<":
            depth += 1
        elif t == ">":
            depth -= 1
            if depth == 0:
                return j + 1
        elif t in (";", "{", "}", "&&", "||"):
            return None
        j += 1
    return None


def try_parse_decl(toks):
    """Parses `quals Type name [array][MACRO(..)] [= init | {init} | (init)]`.
    Returns (type_texts, name, init_tokens, is_static) or None."""
    i = 0
    n = len(toks)
    is_static = False
    while i < n and toks[i].text in DECL_QUALIFIERS:
        is_static |= toks[i].text == "static"
        i += 1
    start = i
    j = consume_type(toks, i)
    if j is None or j >= n:
        return None
    type_end = j
    if toks[j].kind != "id" or toks[j].text in KEYWORDS:
        return None
    name = toks[j].text
    j += 1
    while j < n and toks[j].text == "[":
        j = match_balanced(toks, j)
    # Trailing attribute macros: XO_GUARDED_BY(x) etc.
    while j < n and toks[j].kind == "id" and ALLCAPS_RE.match(toks[j].text):
        j += 1
        if j < n and toks[j].text == "(":
            j = match_balanced(toks, j)
    type_texts = [t.text for t in toks[start:type_end]]
    if j == n:
        return (type_texts, name, [], is_static)
    if toks[j].text == "=":
        return (type_texts, name, toks[j + 1:], is_static)
    if toks[j].text in ("{", "("):
        return (type_texts, name, toks[j:], is_static)
    return None


CONTROL_KEYWORDS = {"if", "while", "switch", "for"}


def parse_block(toks):
    """Token slice of a function body (without outer braces) -> [Stmt]."""
    stmts = []
    i = 0
    n = len(toks)
    pending = []

    def flush():
        if not pending:
            return
        decl = try_parse_decl(pending)
        line = pending[0].line
        if decl is not None:
            type_texts, name, init, is_static = decl
            if not is_static:
                stmts.append(Stmt("decl", line, tokens=list(pending),
                                  type_tokens=type_texts, name=name,
                                  init=list(init)))
                del pending[:]
                return
        stmts.append(Stmt("expr", line, tokens=list(pending)))
        del pending[:]

    while i < n:
        t = toks[i]
        if not pending:
            if t.text == "{":
                j = match_balanced(toks, i)
                stmts.append(Stmt("block", t.line,
                                  children=parse_block(toks[i + 1:j - 1])))
                i = j
                continue
            if t.text in CONTROL_KEYWORDS:
                j = i + 1
                while j < n and toks[j].text != "(":
                    j += 1
                if j < n:
                    k = match_balanced(toks, j)
                    stmts.append(Stmt("expr", t.line, tokens=toks[i:k]))
                    i = k
                    continue
                i += 1
                continue
            if t.text in ("else", "do", "try"):
                i += 1
                continue
            if t.text == "catch":
                j = i + 1
                if j < n and toks[j].text == "(":
                    j = match_balanced(toks, j)
                i = j
                continue
            if t.text == "case":
                while i < n and toks[i].text != ":":
                    i += 1
                i += 1
                continue
            if t.text == "default" and i + 1 < n and toks[i + 1].text == ":":
                i += 2
                continue
            if t.text == "return":
                j = i + 1
                while j < n and toks[j].text != ";":
                    if toks[j].text in OPEN_TO_CLOSE:
                        j = match_balanced(toks, j)
                        continue
                    j += 1
                stmts.append(Stmt("return", t.line, tokens=toks[i + 1:j]))
                i = j + 1
                continue
            if t.text == ";":
                i += 1
                continue
        if t.text in OPEN_TO_CLOSE:
            j = match_balanced(toks, i)
            pending.extend(toks[i:j])
            i = j
            continue
        if t.text == ";":
            flush()
            i += 1
            continue
        pending.append(t)
        i += 1
    flush()
    return stmts


class BuiltinParser:
    """Parses one file's token stream into FileIR classes/functions."""

    def __init__(self, toks, path, ir):
        self.toks = toks
        self.path = path
        self.ir = ir

    def parse(self):
        self.parse_decls(0, len(self.toks), [], None)

    # -- declaration scope --------------------------------------------------

    def parse_decls(self, i, end, class_stack, class_decl):
        toks = self.toks
        while i < end:
            t = toks[i]
            text = t.text
            if text == "namespace":
                j = i + 1
                while j < end and toks[j].text != "{":
                    if toks[j].text in (";", "="):  # alias / decl
                        break
                    j += 1
                if j < end and toks[j].text == "{":
                    k = match_balanced(toks, j)
                    self.parse_decls(j + 1, k - 1, class_stack, class_decl)
                    i = k
                else:
                    i = self.skip_to_semicolon(j, end)
                continue
            if text in ("using", "typedef", "static_assert", "extern"):
                i = self.skip_to_semicolon(i, end)
                continue
            if text == "template":
                j = i + 1
                if j < end and toks[j].text == "<":
                    k = close_angle(toks, j)
                    i = k if k is not None else j + 1
                else:
                    i = j
                continue
            if text == "friend":
                i = self.skip_to_semicolon(i, end)
                continue
            if text == "enum":
                j = i + 1
                while j < end and toks[j].text not in ("{", ";"):
                    j += 1
                if j < end and toks[j].text == "{":
                    j = match_balanced(toks, j)
                i = self.skip_to_semicolon(j, end)
                continue
            if text in ("class", "struct", "union"):
                i = self.parse_class(i, end, class_stack, class_decl)
                continue
            if text in ("public", "private", "protected") and \
                    i + 1 < end and toks[i + 1].text == ":":
                i += 2
                continue
            if text in (";", "}"):
                i += 1
                continue
            i = self.parse_entry(i, end, class_stack, class_decl)

    def skip_to_semicolon(self, i, end):
        toks = self.toks
        while i < end:
            if toks[i].text in OPEN_TO_CLOSE:
                i = match_balanced(toks, i)
                continue
            if toks[i].text == ";":
                return i + 1
            i += 1
        return end

    def parse_class(self, i, end, class_stack, class_decl):
        toks = self.toks
        j = i + 1
        name = None
        while j < end and toks[j].text not in ("{", ";", ":"):
            if toks[j].kind == "id" and not ALLCAPS_RE.match(toks[j].text):
                name = toks[j].text
            if toks[j].text == "<":  # specialization — skip args
                k = close_angle(toks, j)
                if k is None:
                    break
                j = k
                continue
            j += 1
        if j >= end or toks[j].text == ";":
            return self.skip_to_semicolon(i, end)  # forward declaration
        if toks[j].text == ":":  # base clause
            while j < end and toks[j].text != "{":
                j += 1
        if j >= end or toks[j].text != "{":
            return self.skip_to_semicolon(j, end)
        k = match_balanced(toks, j)
        if name is not None:
            qualified = "::".join(class_stack + [name])
            decl = ClassDecl(name, qualified, toks[i].line, self.path)
            self.ir.classes.append(decl)
            self.parse_decls(j + 1, k - 1, class_stack + [name], decl)
        return self.skip_to_semicolon(k, end)

    # -- generic entry: member, prototype, or function definition -----------

    def parse_entry(self, i, end, class_stack, class_decl):
        toks = self.toks
        j = i
        first_paren = None
        saw_assign = False
        while j < end:
            text = toks[j].text
            if text == "(" and first_paren is None and not saw_assign:
                first_paren = j
                j = match_balanced(toks, j)
                continue
            if text in OPEN_TO_CLOSE and text != "{":
                j = match_balanced(toks, j)
                continue
            if text == "=" and first_paren is None:
                saw_assign = True
                j += 1
                continue
            if text == "{":
                if first_paren is not None and not saw_assign:
                    return self.parse_function(i, first_paren, j, end,
                                               class_stack, class_decl)
                j = match_balanced(toks, j)
                continue
            if text == ":" and first_paren is not None and not saw_assign:
                # Constructor initializer list: scan to the body brace.
                k = j + 1
                while k < end and toks[k].text != "{":
                    if toks[k].text in OPEN_TO_CLOSE:
                        k = match_balanced(toks, k)
                        continue
                    if toks[k].text == ";":  # bit-field, not a ctor
                        break
                    k += 1
                if k < end and toks[k].text == "{":
                    return self.parse_function(i, first_paren, k, end,
                                               class_stack, class_decl)
                j = k
                continue
            if text == ";":
                self.finish_simple_entry(i, j, first_paren, class_stack,
                                         class_decl)
                return j + 1
            j += 1
        return end

    def finish_simple_entry(self, i, semi, first_paren, class_stack,
                            class_decl):
        toks = self.toks
        entry = toks[i:semi]
        if first_paren is not None:
            # Prototype / deleted / defaulted signature: record for the
            # cross-TU return-type tables.
            fn = self.make_function(i, first_paren, None, class_stack,
                                    class_decl)
            if fn is not None:
                self.ir.functions.append(fn)
            return
        if class_decl is None:
            return  # namespace-scope variable: not interesting
        decl = try_parse_decl(entry)
        if decl is None:
            return
        type_texts, name, _init, is_static = decl
        if is_static:
            return
        class_decl.members.append(
            Member(name, type_texts, entry[0].line))

    # -- functions ----------------------------------------------------------

    def make_function(self, i, paren, body_stmts, class_stack, class_decl):
        toks = self.toks
        pre = toks[i:paren]
        # Strip leading qualifiers/attribute macros.
        s = 0
        while s < len(pre) and (pre[s].text in DECL_QUALIFIERS
                                or (pre[s].kind == "id"
                                    and ALLCAPS_RE.match(pre[s].text)
                                    and pre[s].text not in ("XO",))):
            if (s + 1 < len(pre) and pre[s].kind == "id"
                    and ALLCAPS_RE.match(pre[s].text)
                    and pre[s + 1].text == "("):
                # macro with args before the return type
                e = match_balanced(pre, s + 1)
                s = e
                continue
            s += 1
        pre = pre[s:]
        if not pre:
            return None
        if pre[-1].kind != "id":
            if pre[-1].text == "~" or "operator" in [t.text for t in pre]:
                return None
            return None
        # Walk the trailing qualified-name chain backwards.
        chain = [pre[-1].text]
        k = len(pre) - 1
        while k - 2 >= 0 and pre[k - 1].text == "::" \
                and pre[k - 2].kind == "id":
            chain.insert(0, pre[k - 2].text)
            k -= 2
        if pre[-1].text in KEYWORDS:
            return None
        name = chain[-1]
        ret = [t.text for t in pre[:k]]
        if not ret and class_decl is None and len(chain) < 2:
            return None  # a call, not a definition
        class_name = None
        if len(chain) >= 2:
            class_name = "::".join(chain[:-1])
        elif class_decl is not None:
            class_name = class_decl.qualified
            if not ret and name != class_decl.name:
                return None  # macro line, not a constructor
        params = self.parse_params(paren)
        qualified = (class_name + "::" + name) if class_name else name
        return FunctionDecl(name, qualified, class_name, ret, params,
                            body_stmts, toks[i].line, self.path)

    def parse_params(self, paren):
        toks = self.toks
        endp = match_balanced(toks, paren)
        inner = toks[paren + 1:endp - 1]
        params = []
        depth_split = []
        cur = []
        j = 0
        while j < len(inner):
            t = inner[j]
            if t.text in OPEN_TO_CLOSE:
                k = match_balanced(inner, j)
                cur.extend(inner[j:k])
                j = k
                continue
            if t.text == "<":
                k = close_angle(inner, j)
                if k is not None:
                    cur.extend(inner[j:k])
                    j = k
                    continue
            if t.text == ",":
                depth_split.append(cur)
                cur = []
                j += 1
                continue
            cur.append(t)
            j += 1
        if cur:
            depth_split.append(cur)
        for ptoks in depth_split:
            # Drop default argument.
            for j, t in enumerate(ptoks):
                if t.text == "=":
                    ptoks = ptoks[:j]
                    break
            if not ptoks:
                continue
            if ptoks[-1].kind == "id" and len(ptoks) > 1:
                params.append(([t.text for t in ptoks[:-1]],
                               ptoks[-1].text))
            else:
                params.append(([t.text for t in ptoks], None))
        return params

    def parse_function(self, i, paren, brace, end, class_stack, class_decl):
        toks = self.toks
        close = match_balanced(toks, brace)
        body = parse_block(toks[brace + 1:close - 1])
        # Constructor initializer lists run between ')' and '{': surface
        # them as one expression statement so calls stay visible.
        endp = match_balanced(toks, paren)
        init_list = toks[endp:brace]
        if any(t.text == ":" for t in init_list):
            body.insert(0, Stmt("expr",
                                init_list[0].line if init_list
                                else toks[brace].line,
                                tokens=init_list))
        fn = self.make_function(i, paren, body, class_stack, class_decl)
        if fn is not None:
            self.ir.functions.append(fn)
        return close


def parse_file_builtin(path, relpath):
    try:
        text = open(path, encoding="utf-8", errors="replace").read()
    except OSError as err:
        print(f"xo_analyze: cannot read {relpath}: {err}", file=sys.stderr)
        return None
    toks, comments = tokenize(text)
    ir = FileIR(relpath)
    ir.suppressions, ir.allow_issues = parse_suppressions(
        comments, {t.line for t in toks})
    BuiltinParser(toks, relpath, ir).parse()
    return ir


# ---------------------------------------------------------------------------
# Program model: cross-TU indexes.
# ---------------------------------------------------------------------------

class Program:
    def __init__(self, files):
        self.files = files  # {relpath: FileIR}
        self.classes = {}   # qualified -> ClassDecl (first definition wins)
        self.classes_by_name = {}  # last component -> [ClassDecl]
        self.functions = []
        self.fn_by_name = {}  # simple name -> [FunctionDecl]
        for relpath in sorted(files):
            ir = files[relpath]
            for c in ir.classes:
                if c.members and c.qualified not in self.classes:
                    self.classes[c.qualified] = c
                self.classes.setdefault(c.qualified, c)
                self.classes_by_name.setdefault(c.name, []).append(c)
            for f in ir.functions:
                self.functions.append(f)
                self.fn_by_name.setdefault(f.name, []).append(f)

    def suppressed(self, relpath, line, rule):
        ir = self.files.get(relpath)
        return ir is not None and rule in ir.suppressions.get(line, set())


def walk_stmts(stmts):
    """Depth-first statement iterator."""
    for s in stmts:
        yield s
        if s.kind == "block":
            yield from walk_stmts(s.children)


def type_has(type_tokens, names):
    return any(t in names for t in type_tokens)


def type_is_indirect(type_tokens):
    return "*" in type_tokens or "&" in type_tokens


# ---------------------------------------------------------------------------
# Rule: backing-before-view.
# ---------------------------------------------------------------------------

def member_is_backing(m):
    # shared_ptr<const void> (the type-erased keep-alive) ...
    texts = m.type_tokens
    if "shared_ptr" in texts and "void" in texts:
        return True
    # ... or a SegmentFile held by value / smart pointer.
    if type_has(texts, BACKING_MEMBER_MARKERS) and "*" not in texts \
            and "&" not in texts:
        return True
    return False


def member_view_reference(m, capable):
    """Does member m hold (by value) a type that can alias mapped memory?
    `capable` is the current set of view-capable class names."""
    texts = m.type_tokens
    if type_is_indirect(texts):
        return False
    if any(t in SMART_PTRS for t in texts):
        return False
    return any(t in MAPPED_VIEW_ROOTS or t in capable for t in texts)


def member_is_raw_view(m):
    texts = m.type_tokens
    if type_is_indirect(texts):
        return False
    return type_has(texts, RAW_VIEW_MEMBER_TYPES)


def check_backing_before_view(program):
    findings = []
    # Fixpoint: a class is view-capable (its holder must provide backing)
    # when it holds a mapped-view-capable member by value and does not pin
    # a backing member itself.
    capable = set()
    changed = True
    while changed:
        changed = False
        for c in program.classes.values():
            if c.name in capable:
                continue
            has_backing = any(member_is_backing(m) for m in c.members)
            needs = [m for m in c.members
                     if member_view_reference(m, capable)]
            if needs and not has_backing and c.name not in capable:
                capable.add(c.name)
                changed = True
    seen = set()
    for qualified in sorted(program.classes):
        c = program.classes[qualified]
        if (c.path, c.qualified) in seen:
            continue
        seen.add((c.path, c.qualified))
        backing_members = [m for m in c.members if member_is_backing(m)]
        needs = [m for m in c.members if member_view_reference(m, capable)]
        if needs and not backing_members:
            m = needs[0]
            findings.append((
                c.path, c.line, "backing-before-view",
                f"class {c.qualified} holds mapped-view-capable member "
                f"'{m.name}' ({' '.join(m.type_tokens)}) but no backing "
                "member (shared_ptr<const void> or SegmentFile); add one "
                "declared before it, or suppress with a justification if "
                "every instance owns its columns"))
            continue
        if not backing_members:
            continue
        first_backing = min(c.members.index(m) for m in backing_members)
        ordered_views = needs + [m for m in c.members
                                 if member_is_raw_view(m)]
        for m in ordered_views:
            if c.members.index(m) < first_backing:
                findings.append((
                    c.path, m.line, "backing-before-view",
                    f"member '{m.name}' of {c.qualified} may alias the "
                    "backing mapping but is declared before backing "
                    f"member '{c.members[first_backing].name}': members "
                    "destroy in reverse order, so the mapping would die "
                    "first — declare the backing member earlier"))
    return findings


# ---------------------------------------------------------------------------
# Rule: view-escape.
# ---------------------------------------------------------------------------

def is_view_return(ret_tokens):
    if not ret_tokens:
        return False
    if "&" in ret_tokens or "*" in ret_tokens:
        return False  # references/pointers are the caller's problem
    return type_has(ret_tokens, VIEW_RETURN_TYPES)


def owning_value_type(type_tokens):
    if type_is_indirect(type_tokens):
        return False
    if type_has(type_tokens, VIEW_RETURN_TYPES | {"string_view"}):
        return False
    return type_has(type_tokens, OWNING_TYPES)


def view_typed(type_tokens):
    return type_has(type_tokens, VIEW_RETURN_TYPES) or \
        type_tokens == ["auto"]


def check_view_escape(program):
    findings = []
    member_types = {}  # class qualified -> {member name: type tokens}
    for c in program.classes.values():
        member_types.setdefault(c.qualified, {})
        for m in c.members:
            member_types[c.qualified][m.name] = m.type_tokens
    for fn in program.functions:
        if fn.body is None:
            continue
        ret_is_view = is_view_return(fn.return_type)
        # Frame-owned storage: owning locals and by-value owning params.
        tainted = {}
        for ptype, pname in fn.params:
            if pname and owning_value_type(ptype):
                tainted[pname] = f"by-value parameter '{pname}'"
        stores_checked = fn.class_name in member_types
        for s in walk_stmts(fn.body):
            if s.kind == "decl":
                if owning_value_type(s.type_tokens):
                    tainted[s.name] = f"local '{s.name}'"
                elif view_typed(s.type_tokens) and s.init:
                    hit = idents(s.init) & set(tainted)
                    if hit:
                        src = tainted[sorted(hit)[0]]
                        tainted[s.name] = src
            elif s.kind == "return" and ret_is_view:
                hit = idents(s.tokens) & set(tainted)
                if hit:
                    name = sorted(hit)[0]
                    findings.append((
                        fn.path, s.line, "view-escape",
                        f"{fn.qualified} returns a "
                        f"{' '.join(fn.return_type)} derived from "
                        f"{tainted[name]}, whose storage dies when the "
                        "function returns"))
            elif s.kind == "expr" and stores_checked and len(s.tokens) > 2:
                # this->member = ... / member = ... storing a view.
                t = s.tokens
                base = 0
                if t[0].text == "this" and t[1].text == "->":
                    base = 2
                if len(t) > base + 1 and t[base].kind == "id" \
                        and t[base + 1].text == "=":
                    mname = t[base].text
                    mtype = member_types[fn.class_name].get(mname)
                    if mtype is not None and \
                            type_has(mtype, VIEW_RETURN_TYPES):
                        hit = idents(t[base + 2:]) & set(tainted)
                        if hit:
                            name = sorted(hit)[0]
                            findings.append((
                                fn.path, s.line, "view-escape",
                                f"{fn.qualified} stores a view derived "
                                f"from {tainted[name]} into member "
                                f"'{mname}', which outlives the frame"))
    return findings


# ---------------------------------------------------------------------------
# Rule: snapshot-pin.
# ---------------------------------------------------------------------------

def shared_ptr_factories(program):
    """Simple names of functions returning a shared_ptr BY VALUE."""
    names = set(PTR_FACTORIES)
    for fn in program.functions:
        ret = fn.return_type
        if "shared_ptr" in ret and "&" not in ret and "*" not in ret:
            names.add(fn.name)
    return names


def find_unpinned_get(toks, factories):
    """Position of `<factory>(...).get()` — .get() called on a temporary
    shared_ptr returned by value. Returns (line, factory) or None."""
    for j in range(2, len(toks) - 2):
        if toks[j].text != "get" or toks[j - 1].text != ".":
            continue
        if toks[j + 1].text != "(":
            continue
        if toks[j - 2].text != ")":
            continue
        # Walk back to the '(' matching toks[j-2].
        depth = 0
        k = j - 2
        while k >= 0:
            if toks[k].text == ")":
                depth += 1
            elif toks[k].text == "(":
                depth -= 1
                if depth == 0:
                    break
            k -= 1
        if k <= 0:
            continue
        callee = k - 1
        if toks[callee].text == ">":
            depth = 0
            while callee >= 0:
                if toks[callee].text == ">":
                    depth += 1
                elif toks[callee].text == "<":
                    depth -= 1
                    if depth == 0:
                        break
                callee -= 1
            callee -= 1
        if callee >= 0 and toks[callee].kind == "id" \
                and toks[callee].text in factories:
            return (toks[j].line, toks[callee].text)
    return None


def check_snapshot_pin(program):
    findings = []
    factories = shared_ptr_factories(program)
    for fn in program.functions:
        if fn.body is None:
            continue
        pointer_locals = set()
        for s in walk_stmts(fn.body):
            hit = None
            if s.kind == "decl":
                if "*" in s.type_tokens:
                    pointer_locals.add(s.name)
                stored = ("*" in s.type_tokens
                          or s.type_tokens == ["auto"]
                          or s.type_tokens == ["const", "auto"])
                if stored and s.init:
                    hit = find_unpinned_get(s.init, factories)
            elif s.kind == "expr" and len(s.tokens) > 2 \
                    and s.tokens[0].kind == "id" \
                    and s.tokens[0].text in pointer_locals \
                    and s.tokens[1].text == "=":
                hit = find_unpinned_get(s.tokens[2:], factories)
            if hit is not None:
                line, factory = hit
                findings.append((
                    fn.path, line, "snapshot-pin",
                    f"{fn.qualified} stores {factory}(...).get(): the "
                    "temporary shared_ptr dies at the end of the "
                    "statement, leaving the raw pointer unpinned — hold "
                    "the shared_ptr for the life of the use"))
    return findings


# ---------------------------------------------------------------------------
# Rule: lock-order.
# ---------------------------------------------------------------------------

def direct_lock_regions(fn):
    """[(mutex, line, stmts_under)] — stmts_under is every statement after
    the MutexLock declaration inside its enclosing block (the RAII scope)."""
    regions = []

    def scan(stmts):
        for i, s in enumerate(stmts):
            if s.kind == "block":
                scan(s.children)
                continue
            if s.kind == "decl" and type_has(s.type_tokens, {"MutexLock"}):
                mutex = next((t.text for t in s.init
                              if t.text in LOCK_LEVELS), None)
                if mutex is not None:
                    regions.append((mutex, s.line, stmts[i + 1:]))
    scan(fn.body or [])
    return regions


def transitive_locks(program):
    """{simple fn name: {mutex: witness path tuple}} over the call graph."""
    direct = {}
    callees = {}
    for fn in program.functions:
        if fn.body is None:
            continue
        dl = direct.setdefault(fn.name, {})
        for mutex, line, _under in direct_lock_regions(fn):
            dl.setdefault(mutex, ())
        calls_here = callees.setdefault(fn.name, set())
        for s in walk_stmts(fn.body):
            for cname, _ln in calls(s.tokens + s.init):
                calls_here.add(cname)
    memo = {}

    def resolve(name, stack):
        if name in memo:
            return memo[name]
        if name in stack:
            return {}
        result = dict(direct.get(name, {}))
        stack.add(name)
        for callee in sorted(callees.get(name, ())):
            if callee == name or callee not in direct and \
                    callee not in callees:
                continue
            for mutex, path in resolve(callee, stack).items():
                if mutex not in result:
                    result[mutex] = (callee,) + path
        stack.discard(name)
        memo[name] = result
        return result

    for name in sorted(set(direct) | set(callees)):
        resolve(name, set())
    return memo


def check_lock_order(program):
    findings = []
    acquired_by = transitive_locks(program)
    for fn in program.functions:
        if fn.body is None:
            continue
        for held, held_line, under in direct_lock_regions(fn):
            held_level = LOCK_LEVELS[held][0]
            reported = set()
            for s in walk_stmts(under):
                # Nested direct acquisition under the held lock.
                inner = []
                if s.kind == "decl" and \
                        type_has(s.type_tokens, {"MutexLock"}):
                    m = next((t.text for t in s.init
                              if t.text in LOCK_LEVELS), None)
                    if m is not None:
                        inner.append((m, (), s.line))
                for cname, cline in calls(s.tokens + s.init):
                    for mutex, path in sorted(
                            acquired_by.get(cname, {}).items()):
                        inner.append((mutex, (cname,) + path, cline))
                for mutex, path, line in inner:
                    level = LOCK_LEVELS[mutex][0]
                    key = (mutex, path)
                    if key in reported:
                        continue
                    via = " -> ".join(path) if path else "this function"
                    if mutex == held:
                        reported.add(key)
                        findings.append((
                            fn.path, line, "lock-order",
                            f"{fn.qualified} re-acquires {mutex} (via "
                            f"{via}) while already holding it (acquired "
                            f"line {held_line}): self-deadlock"))
                    elif level <= held_level:
                        reported.add(key)
                        findings.append((
                            fn.path, line, "lock-order",
                            f"{fn.qualified} acquires {mutex} (level "
                            f"{level}, via {via}) while holding {held} "
                            f"(level {held_level}, acquired line "
                            f"{held_line}); the documented order is "
                            "SaveMutex before FileMutex/SegmentFileMutex/"
                            "ManifestFileMutex and same-level locks "
                            "never nest"))
    return findings


# ---------------------------------------------------------------------------
# Rule: view-outlives-unmap.
# ---------------------------------------------------------------------------

def check_view_outlives_unmap(program):
    findings = []
    for fn in program.functions:
        if fn.body is None:
            continue
        owners = set()
        for ptype, pname in fn.params:
            # By-value / smart-pointer SegmentFile parameters are owners
            # too; references are the caller's lifetime.
            if pname and type_has(ptype, {"SegmentFile"}) \
                    and "&" not in ptype and "*" not in ptype:
                owners.add(pname)
        view_of = {}   # view local -> owner local
        killed = {}    # owner -> (line, how)
        flagged = set()

        def mentions_maker(toks):
            return any(t.text in VIEW_MAKERS and t.kind == "id"
                       for t in toks)

        def scan(stmts):
            local_owners = []
            for s in stmts:
                if s.kind == "block":
                    scan(s.children)
                    continue
                toks = s.tokens + s.init
                # Use-after-kill?
                used = idents(toks)
                for v, owner in sorted(view_of.items()):
                    if v in used and owner in killed and v not in flagged:
                        line, how = killed[owner]
                        findings.append((
                            fn.path, s.line, "view-outlives-unmap",
                            f"{fn.qualified} uses view '{v}' after its "
                            f"SegmentFile backing '{owner}' was {how} "
                            f"(line {line}): the mapping may be gone"))
                        flagged.add(v)
                if s.kind == "decl":
                    viewish = ("auto" in s.type_tokens
                               or type_has(s.type_tokens,
                                           MAPPED_VIEW_ROOTS
                                           | RAW_VIEW_MEMBER_TYPES))
                    if type_has(s.type_tokens, {"SegmentFile"}) or \
                            any(t.text == "SegmentFile" for t in s.init):
                        owners.add(s.name)
                        local_owners.append((s.name, s.line))
                    elif s.init and viewish:
                        src = idents(s.init) & owners
                        if src and mentions_maker(s.init):
                            view_of[s.name] = sorted(src)[0]
                        else:
                            via = idents(s.init) & set(view_of)
                            if via:
                                view_of[s.name] = view_of[sorted(via)[0]]
                # Kill events.
                for owner in sorted(owners):
                    if owner in killed:
                        continue
                    if find_subseq(toks, [owner, ".", "reset", "("]) >= 0 \
                            or find_subseq(toks,
                                           [owner, "->", "reset", "("]) >= 0:
                        killed[owner] = (s.line, "reset")
                    elif find_subseq(toks, ["move", "(", owner, ")"]) >= 0:
                        killed[owner] = (s.line, "moved from")
                    elif s.kind == "expr" and len(s.tokens) > 1 \
                            and s.tokens[0].text == owner \
                            and s.tokens[1].text == "=":
                        killed[owner] = (s.line, "reassigned")
                # Assignment re-binding an existing local to a view.
                if s.kind == "expr" and len(s.tokens) > 2 \
                        and s.tokens[0].kind == "id" \
                        and s.tokens[1].text == "=":
                    rhs = s.tokens[2:]
                    src = idents(rhs) & owners
                    if src and mentions_maker(rhs):
                        view_of[s.tokens[0].text] = sorted(src)[0]
            # Scope exit destroys owners declared in this block.
            for owner, line in local_owners:
                if owner not in killed:
                    killed[owner] = (line, "destroyed at scope exit")

        scan(fn.body)
    return findings


# ---------------------------------------------------------------------------
# Rule: unjustified-allow (textual).
# ---------------------------------------------------------------------------

def check_unjustified_allow(program):
    findings = []
    for relpath in sorted(program.files):
        for line, message in program.files[relpath].allow_issues:
            findings.append((relpath, line, "unjustified-allow", message))
    return findings


RULES = [
    ("backing-before-view", check_backing_before_view),
    ("lock-order", check_lock_order),
    ("snapshot-pin", check_snapshot_pin),
    ("unjustified-allow", check_unjustified_allow),
    ("view-escape", check_view_escape),
    ("view-outlives-unmap", check_view_outlives_unmap),
]


# ---------------------------------------------------------------------------
# Source collection.
# ---------------------------------------------------------------------------

def find_compile_commands(root, explicit):
    if explicit:
        return explicit if os.path.isfile(explicit) else None
    for rel in ("build/compile_commands.json",
                "build-lint/compile_commands.json",
                "compile_commands.json"):
        path = os.path.join(root, rel)
        if os.path.isfile(path):
            return path
    return None


def collect_sources(root, files, compile_commands):
    """Absolute paths of the sources to analyze, sorted by relpath.
    Explicit `files` win; otherwise every .h/.cc under src/ (the
    compile-commands database only adds flags for the clang frontend —
    headers carry most of the invariants, so we never restrict to TUs)."""
    if files:
        out = []
        for f in files:
            path = os.path.abspath(f)
            if not os.path.isfile(path):
                raise SystemExit(f"xo_analyze: no such file: {f}")
            out.append(path)
        return sorted(out, key=lambda p: os.path.relpath(p, root))
    src = os.path.join(root, "src")
    out = []
    if os.path.isdir(src):
        for dirpath, dirnames, filenames in os.walk(src):
            dirnames.sort()
            for name in sorted(filenames):
                if name.endswith(CXX_EXTENSIONS):
                    out.append(os.path.join(dirpath, name))
    _ = compile_commands  # TU list intentionally not used to narrow scope
    return out


def compile_flags_for(compile_commands, root):
    """Representative include/define flags from the database, for the
    clang frontend. One TU's flags are enough: the repo compiles every
    TU with a uniform flag set."""
    flags = ["-std=c++20", "-I" + os.path.join(root, "src")]
    if not compile_commands:
        return flags
    try:
        with open(compile_commands, "r", encoding="utf-8") as fh:
            db = json.load(fh)
    except (OSError, ValueError):
        return flags
    for entry in db:
        cmd = entry.get("command")
        if cmd is None and "arguments" in entry:
            cmd = " ".join(entry["arguments"])
        if not cmd or "/src/" not in entry.get("file", ""):
            continue
        picked = ["-std=c++20"]
        toks = cmd.split()
        i = 0
        while i < len(toks):
            t = toks[i]
            if t.startswith("-I") or t.startswith("-D"):
                picked.append(t if len(t) > 2 else t + toks[i + 1])
                if len(t) == 2:
                    i += 1
            elif t in ("-isystem", "-include"):
                picked.extend([t, toks[i + 1]])
                i += 1
            elif t.startswith("-std="):
                picked[0] = t
            i += 1
        return picked + ["-I" + os.path.join(root, "src")]
    return flags


# ---------------------------------------------------------------------------
# Clang frontend (libclang via clang.cindex). Optional; used when
# importable. Produces the same IR the builtin frontend does, so the
# rules are frontend-agnostic. Suppressions always come from the
# textual layer (comments are not in the clang AST).
# ---------------------------------------------------------------------------

def load_cindex():
    try:
        from clang import cindex  # noqa: PLC0415
    except ImportError:
        return None
    lib = os.environ.get("XO_LIBCLANG")
    try:
        if lib:
            if os.path.isdir(lib):
                cindex.Config.set_library_path(lib)
            else:
                cindex.Config.set_library_file(lib)
        cindex.Index.create()
    except Exception:  # cindex raises LibclangError and friends
        return None
    return cindex


def clang_type_tokens(ctype):
    """Flatten a clang type spelling into builtin-style type tokens."""
    spelling = ctype.spelling
    toks, _ = tokenize(spelling)
    return [t.text for t in toks]


def clang_stmt_from_extent(cursor, kind="expr"):
    toks = []
    for t in cursor.get_tokens():
        toks.append(Token("id" if t.kind.name == "IDENTIFIER" else
                          ("kw" if t.kind.name == "KEYWORD" else "punct"),
                          t.spelling, t.extent.start.line))
    line = cursor.location.line
    return Stmt(kind, line, tokens=toks)


def parse_file_clang(cindex, path, relpath, flags):
    """Build a FileIR from the libclang AST. Defensive: any liblang
    hiccup falls back to the builtin parser for that file so a clang
    packaging quirk can never weaken the gate below builtin coverage."""
    try:
        index = cindex.Index.create()
        tu = index.parse(path, args=flags,
                         options=cindex.TranslationUnit
                         .PARSE_DETAILED_PROCESSING_RECORD)
    except Exception:
        return parse_file_builtin(path, relpath)
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        text = fh.read()
    toks, comments = tokenize(text)
    suppressions, allow_issues = parse_suppressions(
        comments, {t.line for t in toks})
    ir = FileIR(relpath)
    ir.suppressions = suppressions
    ir.allow_issues = allow_issues
    K = cindex.CursorKind

    def qualified_name(cursor):
        parts = []
        c = cursor
        while c is not None and c.kind not in (K.TRANSLATION_UNIT,):
            if c.spelling:
                parts.append(c.spelling)
            c = c.semantic_parent
        return "::".join(reversed(parts)) or cursor.spelling

    def visit(cursor, class_stack):
        for child in cursor.get_children():
            loc = child.location
            if loc.file is None or \
                    os.path.abspath(loc.file.name) != os.path.abspath(path):
                # Do not descend into includes.
                continue
            kind = child.kind
            if kind in (K.CLASS_DECL, K.STRUCT_DECL) and \
                    child.is_definition():
                cname = child.spelling or "<anon>"
                qual = "::".join([c.name for c in class_stack] + [cname])
                cd = ClassDecl(cname, qual, loc.line, relpath)
                for m in child.get_children():
                    if m.kind == K.FIELD_DECL:
                        cd.members.append(Member(
                            m.spelling, clang_type_tokens(m.type),
                            m.location.line))
                ir.classes.append(cd)
                visit(child, class_stack + [cd])
            elif kind in (K.NAMESPACE, K.LINKAGE_SPEC,
                          K.UNEXPOSED_DECL):
                visit(child, class_stack)
            elif kind in (K.FUNCTION_DECL, K.CXX_METHOD, K.CONSTRUCTOR,
                          K.DESTRUCTOR, K.FUNCTION_TEMPLATE):
                body = None
                params = []
                for p in child.get_children():
                    if p.kind == K.PARM_DECL:
                        params.append((clang_type_tokens(p.type),
                                       p.spelling))
                    elif p.kind == K.COMPOUND_STMT:
                        body = p
                if body is None:
                    fn = FunctionDecl(
                        child.spelling, qualified_name(child),
                        class_stack[-1].name if class_stack else None,
                        clang_type_tokens(child.result_type),
                        params, None, loc.line, relpath)
                    ir.functions.append(fn)
                    continue
                stmts = clang_body(body)
                class_name = class_stack[-1].name if class_stack else None
                if class_name is None and child.semantic_parent is not None \
                        and child.semantic_parent.kind in (
                            K.CLASS_DECL, K.STRUCT_DECL):
                    class_name = child.semantic_parent.spelling
                fn = FunctionDecl(
                    child.spelling, qualified_name(child), class_name,
                    clang_type_tokens(child.result_type), params,
                    stmts, loc.line, relpath)
                ir.functions.append(fn)

    def clang_body(compound):
        stmts = []
        for child in compound.get_children():
            k = child.kind
            if k == K.DECL_STMT:
                for d in child.get_children():
                    if d.kind != K.VAR_DECL:
                        continue
                    init_tokens = []
                    for sub in d.get_children():
                        if sub.kind.is_expression():
                            init_tokens.extend(
                                clang_stmt_from_extent(sub).tokens)
                    stmts.append(Stmt(
                        "decl", d.location.line,
                        type_tokens=clang_type_tokens(d.type),
                        name=d.spelling, init=init_tokens))
            elif k == K.RETURN_STMT:
                stmts.append(clang_stmt_from_extent(child, "return"))
            elif k == K.COMPOUND_STMT:
                blk = Stmt("block", child.location.line)
                blk.children = clang_body(child)
                stmts.append(blk)
            elif k in (K.IF_STMT, K.FOR_STMT, K.WHILE_STMT, K.DO_STMT,
                       K.CXX_FOR_RANGE_STMT, K.SWITCH_STMT,
                       K.CXX_TRY_STMT):
                blk = Stmt("block", child.location.line)
                children = []
                for sub in child.get_children():
                    if sub.kind == K.COMPOUND_STMT:
                        children.extend(clang_body(sub))
                    elif sub.kind.is_expression() or \
                            sub.kind == K.DECL_STMT:
                        children.append(clang_stmt_from_extent(sub))
                blk.children = children
                stmts.append(blk)
            else:
                stmts.append(clang_stmt_from_extent(child))
        return stmts

    try:
        visit(tu.cursor, [])
    except Exception:
        return parse_file_builtin(path, relpath)
    if not ir.classes and not ir.functions:
        # Header parsed to nothing (e.g. missing includes): builtin
        # coverage is strictly better than an empty IR.
        return parse_file_builtin(path, relpath)
    return ir


# ---------------------------------------------------------------------------
# Analysis driver.
# ---------------------------------------------------------------------------

def analyze(root, sources, frontend, compile_commands):
    files = {}
    cindex = None
    flags = None
    if frontend == "clang":
        cindex = load_cindex()
        flags = compile_flags_for(compile_commands, root)
    for path in sources:
        relpath = os.path.relpath(path, root).replace(os.sep, "/")
        if cindex is not None:
            files[relpath] = parse_file_clang(cindex, path, relpath, flags)
        else:
            files[relpath] = parse_file_builtin(path, relpath)
    program = Program(files)
    findings = []
    for _rule, check in RULES:
        findings.extend(check(program))
    out = []
    for path, line, rule, message in findings:
        if program.suppressed(path, line, rule):
            continue
        out.append((path, line, rule, message))
    out.sort(key=lambda f: (f[0], f[1], f[2], f[3]))
    return out


# ---------------------------------------------------------------------------
# Baseline: a committed findings ledger. CI fails on findings NOT in the
# baseline; stale baseline entries are reported as warnings so the
# ledger ratchets down, never silently up.
# ---------------------------------------------------------------------------

def finding_key(f):
    path, line, rule, _message = f
    return f"{path}:{line}: [{rule}]"

def load_baseline(path):
    keys = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line and not line.startswith("#"):
                keys.append(line)
    return keys


def apply_baseline(findings, baseline_keys):
    allowed = set(baseline_keys)
    new = [f for f in findings if finding_key(f) not in allowed]
    present = {finding_key(f) for f in findings}
    stale = [k for k in baseline_keys if k not in present]
    return new, stale


def write_baseline(findings, path):
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("# xo_analyze findings baseline. One `path:line: [rule]`"
                 " per line.\n"
                 "# CI fails on findings not listed here; regenerate with"
                 " tools/xo_analyze.py --write-baseline <path>.\n")
        for f in findings:
            fh.write(finding_key(f) + "\n")


# ---------------------------------------------------------------------------
# Self-test: seeded violations per rule, plus a clean file. Run with
# --self-test; the test suite (tests/xo_analyze_test.py) goes further.
# ---------------------------------------------------------------------------

SELF_TEST_FIXTURES = {
    "src/fixture_view_escape.cc": (
        "#include <string>\n"
        "#include <string_view>\n"
        "std::string_view Leak() {\n"
        "  std::string local = \"abc\";\n"
        "  return std::string_view(local);\n"
        "}\n",
        [("view-escape", 5)],
    ),
    "src/fixture_backing.h": (
        "#pragma once\n"
        "#include \"flat_dil.h\"\n"
        "class Snapshot {\n"
        " private:\n"
        "  FlatDil flat_;\n"
        "};\n",
        [("backing-before-view", 3)],
    ),
    "src/fixture_pin.cc": (
        "#include <memory>\n"
        "struct Snap { int Search() const { return 1; } };\n"
        "int Use() {\n"
        "  const Snap* raw = std::make_shared<Snap>().get();\n"
        "  return raw->Search();\n"
        "}\n",
        [("snapshot-pin", 4)],
    ),
    "src/fixture_lock.cc": (
        "#include \"sync.h\"\n"
        "void Inner() {\n"
        "  MutexLock lock(SaveMutex());\n"
        "}\n"
        "void Outer() {\n"
        "  MutexLock lock(FileMutex());\n"
        "  Inner();\n"
        "}\n",
        [("lock-order", 7)],
    ),
    "src/fixture_unmap.cc": (
        "#include \"segment_file.h\"\n"
        "int Use(SegmentFile file) {\n"
        "  auto view = file.MakeView();\n"
        "  file.reset();\n"
        "  return view.num_keywords();\n"
        "}\n",
        [("view-outlives-unmap", 5)],
    ),
    "src/fixture_allow.cc": (
        "#include <string>\n"
        "// xo-analyze: allow(view-escape)\n"
        "int x = 1;\n",
        [("unjustified-allow", 2)],
    ),
    "src/fixture_clean.cc": (
        "#include <string>\n"
        "#include <string_view>\n"
        "std::string_view Fine(std::string_view in) {\n"
        "  return in.substr(1);\n"
        "}\n"
        "class Pinned {\n"
        " private:\n"
        "  std::shared_ptr<const void> backing_;\n"
        "  FlatDil flat_;\n"
        "};\n",
        [],
    ),
}


def run_self_test(frontend):
    failures = []
    with tempfile.TemporaryDirectory(prefix="xo_analyze_selftest_") as tmp:
        for relpath, (content, _expected) in SELF_TEST_FIXTURES.items():
            path = os.path.join(tmp, relpath)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(content)
        sources = collect_sources(tmp, [], None)
        findings = analyze(tmp, sources, frontend, None)
        got = {}
        for path, line, rule, _message in findings:
            got.setdefault(path, []).append((rule, line))
        for relpath, (_content, expected) in \
                sorted(SELF_TEST_FIXTURES.items()):
            actual = sorted(got.get(relpath, []))
            if sorted(expected) != actual:
                failures.append(
                    f"{relpath}: expected {sorted(expected)}, got {actual}")
    if failures:
        for f in failures:
            print(f"self-test FAIL: {f}", file=sys.stderr)
        return 1
    n = len(SELF_TEST_FIXTURES)
    print(f"xo_analyze: self-test ok ({n} fixtures, frontend={frontend})",
          file=sys.stderr)
    return 0


# ---------------------------------------------------------------------------
# Entry point.
# ---------------------------------------------------------------------------

def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="xo_analyze.py",
        description="AST-grounded lifetime & invariant analysis for src/")
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of tools/)")
    parser.add_argument("--frontend", default="auto",
                        choices=("auto", "builtin", "clang"),
                        help="auto: clang when importable, else builtin")
    parser.add_argument("--compile-commands", default=None,
                        help="compile_commands.json for the clang frontend")
    parser.add_argument("--baseline", default=None,
                        help="fail only on findings absent from this file")
    parser.add_argument("--write-baseline", default=None, metavar="PATH",
                        help="write current findings as the baseline")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--self-test", action="store_true")
    parser.add_argument("files", nargs="*",
                        help="specific files (default: src/ tree)")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in sorted(RULE_DOCS):
            print(f"{rule}: {RULE_DOCS[rule]}")
        return 0

    frontend = args.frontend
    if frontend == "auto":
        frontend = "clang" if load_cindex() is not None else "builtin"
    elif frontend == "clang" and load_cindex() is None:
        # Graceful skip, mirroring run_analyze.sh: a GCC-only machine
        # must not fail; the builtin frontend and CI carry the gate.
        print("xo_analyze: libclang (python clang.cindex) not available; "
              "skipping clang frontend (builtin gate still applies via "
              "--frontend builtin)", file=sys.stderr)
        return 0

    if args.self_test:
        return run_self_test(frontend)

    root = os.path.abspath(args.root) if args.root else \
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    compile_commands = find_compile_commands(root, args.compile_commands)
    sources = collect_sources(root, args.files, compile_commands)
    if not sources:
        print("xo_analyze: no sources found", file=sys.stderr)
        return 2
    findings = analyze(root, sources, frontend, compile_commands)

    if args.write_baseline:
        write_baseline(findings, args.write_baseline)
        print(f"xo_analyze: wrote {len(findings)} finding key(s) to "
              f"{args.write_baseline}", file=sys.stderr)
        return 0

    stale = []
    if args.baseline and os.path.isfile(args.baseline):
        findings, stale = apply_baseline(findings, load_baseline(args.baseline))

    for path, line, rule, message in findings:
        print(f"{path}:{line}: [{rule}] {message}")
    for key in stale:
        print(f"xo_analyze: stale baseline entry (fixed? remove it): {key}",
              file=sys.stderr)
    if findings:
        label = "new finding(s)" if args.baseline else "finding(s)"
        print(f"xo_analyze: {len(findings)} {label} "
              f"(frontend={frontend}, {len(sources)} files)",
              file=sys.stderr)
        return 1
    print(f"xo_analyze: clean (frontend={frontend}, {len(sources)} files)",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
