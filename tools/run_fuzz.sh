#!/usr/bin/env bash
# Runs a short fuzz pass over every harness in fuzz/ — the CI `fuzz` job
# entry point, also usable locally before touching a decode path.
#
# With Clang available it builds -DXO_FUZZ=ON (real libFuzzer targets,
# ASan+UBSan) and fuzzes each target for a time budget, seeded from
# fuzz/corpus/seed + fuzz/corpus/regression. Without Clang it falls back
# to the GCC replay drivers (ASan+UBSan) and runs their randomized
# mutation campaign for the same budget. Either way every committed
# regression input is replayed first, and any crash artifact fails the
# run and is left in FUZZ_BUILD_DIR/artifacts/ for triage.
#
# Usage: tools/run_fuzz.sh [seconds-per-target]   (default 60)
# Env:   FUZZ_CLANG=clang++-18  FUZZ_BUILD_DIR=build-fuzz  FUZZ_JOBS=8
set -euo pipefail
cd "$(dirname "$0")/.."

BUDGET="${1:-60}"
BUILD_DIR="${FUZZ_BUILD_DIR:-build-fuzz}"
SAN_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"
SURFACES=(xml_parse xodl_decode segment_open query dewey manifest)

CXX_BIN="${FUZZ_CLANG:-}"
if [[ -z "${CXX_BIN}" ]]; then
  for candidate in clang++ clang++-20 clang++-19 clang++-18 clang++-17 \
                   clang++-16 clang++-15 clang++-14; do
    if command -v "${candidate}" >/dev/null 2>&1; then
      CXX_BIN="${candidate}"
      break
    fi
  done
fi

if [[ -n "${CXX_BIN}" ]]; then
  MODE=libfuzzer
  echo "run_fuzz.sh: libFuzzer mode (${CXX_BIN}), ${BUDGET}s per target"
  cmake -B "${BUILD_DIR}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_COMPILER="${CXX_BIN}" \
    -DXO_FUZZ=ON \
    -DCMAKE_CXX_FLAGS="${SAN_FLAGS}" \
    -DCMAKE_EXE_LINKER_FLAGS="${SAN_FLAGS}" >/dev/null
else
  MODE=replay
  echo "run_fuzz.sh: clang++ not found; replay-campaign mode (GCC)," \
       "${BUDGET}s per target" >&2
  echo "run_fuzz.sh: install clang (apt-get install clang) for libFuzzer" \
       "coverage guidance." >&2
  cmake -B "${BUILD_DIR}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="${SAN_FLAGS}" \
    -DCMAKE_EXE_LINKER_FLAGS="${SAN_FLAGS}" >/dev/null
fi
cmake --build "${BUILD_DIR}" -j"${FUZZ_JOBS:-$(nproc)}" \
  --target "${SURFACES[@]/#/fuzz_}" >/dev/null

ARTIFACTS="${BUILD_DIR}/artifacts"
mkdir -p "${ARTIFACTS}"
STATUS=0
for surface in "${SURFACES[@]}"; do
  target="${BUILD_DIR}/fuzz/fuzz_${surface}"
  corpus=(fuzz/corpus/regression/"${surface}")
  [[ -d fuzz/corpus/seed/${surface} ]] && corpus+=(fuzz/corpus/seed/"${surface}")
  echo "run_fuzz.sh: fuzz_${surface}"
  if [[ "${MODE}" == libfuzzer ]]; then
    # Replay the committed corpus, then fuzz for the budget. Crashes land
    # in the artifacts dir and fail the loop.
    if ! "${target}" -runs=0 "${corpus[@]}"; then
      STATUS=1
      continue
    fi
    work="${ARTIFACTS}/corpus_${surface}"
    mkdir -p "${work}"
    "${target}" -max_total_time="${BUDGET}" -max_len=65536 -timeout=30 \
      -print_final_stats=1 \
      -artifact_prefix="${ARTIFACTS}/${surface}-" \
      "${work}" "${corpus[@]}" || STATUS=1
  else
    "${target}" --seconds "${BUDGET}" --seed "${RANDOM}" \
      --artifact "${ARTIFACTS}/${surface}-crash.bin" \
      "${corpus[@]}" || STATUS=1
  fi
done

leftover=$(find "${ARTIFACTS}" -maxdepth 1 -type f 2>/dev/null | wc -l)
if [[ "${STATUS}" -ne 0 || "${leftover}" -gt 0 ]]; then
  echo "run_fuzz.sh: FAILURES — reproducers under ${ARTIFACTS}/" >&2
  exit 1
fi
echo "run_fuzz.sh: clean"
