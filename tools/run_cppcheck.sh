#!/usr/bin/env bash
# Runs cppcheck over the library sources (src/). Exits non-zero on any
# reported error (--error-exitcode). Skips gracefully when cppcheck is
# not installed, like run_lint.sh: this container is GCC-only; CI
# installs cppcheck.
#
# Suppressions live in tools/cppcheck.supp (one `id:path` per line);
# inline `// cppcheck-suppress <id>` comments are honored too.
#
# Usage: tools/run_cppcheck.sh [extra cppcheck args...]
# Env:   CPPCHECK=cppcheck  CPPCHECK_JOBS=8
set -euo pipefail
cd "$(dirname "$0")/.."

CHECK="${CPPCHECK:-}"
if [[ -z "${CHECK}" ]]; then
  if command -v cppcheck >/dev/null 2>&1; then
    CHECK=cppcheck
  fi
fi
if [[ -z "${CHECK}" ]]; then
  echo "run_cppcheck.sh: cppcheck not found; skipping." >&2
  echo "run_cppcheck.sh: install cppcheck to run the checker locally." >&2
  exit 0
fi

JOBS="${CPPCHECK_JOBS:-$(nproc)}"

# warning+performance+portability, but not style (too opinionated for a
# gate) and not unusedFunction (the library legitimately exports more
# than the binaries in this repo call).
"${CHECK}" \
  --enable=warning,performance,portability \
  --inline-suppr \
  --suppressions-list=tools/cppcheck.supp \
  --error-exitcode=1 \
  --std=c++20 \
  --language=c++ \
  -I src \
  -j "${JOBS}" \
  --quiet \
  "$@" \
  src

echo "run_cppcheck.sh: clean"
