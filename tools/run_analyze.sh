#!/usr/bin/env bash
# Runs the repo's static-analysis suite:
#   1. tools/xo_analyze.py — the AST-grounded lifetime/lock analyzer.
#      The builtin frontend is Python-only, so this gate always runs;
#      the libclang frontend engages automatically when clang.cindex is
#      importable (CI pins it). Gated on the committed baseline.
#   2. Clang Static Analyzer (scan-build) over the library targets,
#      non-zero on any bug (--status-bugs). Skips gracefully when
#      scan-build is not installed, like run_lint.sh: this container is
#      GCC-only; CI installs clang-tools.
#
# Usage: tools/run_analyze.sh [extra scan-build args...]
# Env:   SCAN_BUILD=scan-build-18  ANALYZE_BUILD_DIR=build-analyze
set -euo pipefail
cd "$(dirname "$0")/.."

# AST-grounded invariants first: always-on (Python stdlib only). The
# analyzer locates build*/compile_commands.json itself for the clang
# frontend; the builtin frontend needs nothing.
echo "run_analyze.sh: xo_analyze.py"
python3 tools/xo_analyze.py --baseline tools/xo_analyze_baseline.txt

SCAN="${SCAN_BUILD:-}"
if [[ -z "${SCAN}" ]]; then
  for candidate in scan-build scan-build-20 scan-build-19 scan-build-18 \
                   scan-build-17 scan-build-16 scan-build-15 scan-build-14; do
    if command -v "${candidate}" >/dev/null 2>&1; then
      SCAN="${candidate}"
      break
    fi
  done
fi
if [[ -z "${SCAN}" ]]; then
  echo "run_analyze.sh: scan-build not found; skipping analysis." >&2
  echo "run_analyze.sh: install clang-tools to run the analyzer locally." >&2
  exit 0
fi

BUILD_DIR="${ANALYZE_BUILD_DIR:-build-analyze}"

# The analyzer intercepts the compiler, so the tree must be configured
# and built from scratch under scan-build.
rm -rf "${BUILD_DIR}"
"${SCAN}" --status-bugs "$@" cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null

# Library targets only: analyzing every test/bench TU triples the run
# time without covering new first-party code paths.
"${SCAN}" --status-bugs "$@" cmake --build "${BUILD_DIR}" -j"$(nproc)" \
  --target xontorank_common xontorank_xml xontorank_ir xontorank_onto \
  xontorank_cda xontorank_core xontorank_storage xontorank_eval \
  xontorank_emr

echo "run_analyze.sh: clean"
