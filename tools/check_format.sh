#!/usr/bin/env bash
# Checks clang-format compliance (config: .clang-format) of the C++ files
# changed since a base revision — the PR diff, not the whole repo.
#
# Usage: tools/check_format.sh [base-rev]
#   base-rev defaults to the merge-base with origin/main (falling back to
#   HEAD~1 when origin/main is absent, e.g. in a shallow clone).
# Env:   CLANG_FORMAT=clang-format-18
set -euo pipefail
cd "$(dirname "$0")/.."

FMT="${CLANG_FORMAT:-}"
if [[ -z "${FMT}" ]]; then
  for candidate in clang-format clang-format-20 clang-format-19 \
                   clang-format-18 clang-format-17 clang-format-16 \
                   clang-format-15 clang-format-14; do
    if command -v "${candidate}" >/dev/null 2>&1; then
      FMT="${candidate}"
      break
    fi
  done
fi
if [[ -z "${FMT}" ]]; then
  echo "check_format.sh: clang-format not found; skipping format check." >&2
  exit 0
fi

BASE="${1:-}"
if [[ -z "${BASE}" ]]; then
  BASE="$(git merge-base HEAD origin/main 2>/dev/null || true)"
fi
if [[ -z "${BASE}" ]]; then
  BASE="$(git rev-parse HEAD~1 2>/dev/null || true)"
fi
if [[ -z "${BASE}" ]]; then
  echo "check_format.sh: no base revision found; skipping." >&2
  exit 0
fi

mapfile -t FILES < <(git diff --name-only --diff-filter=ACMR "${BASE}" -- \
  '*.cc' '*.cpp' '*.h' '*.hpp')
if [[ "${#FILES[@]}" -eq 0 ]]; then
  echo "check_format.sh: no C++ files changed since ${BASE}"
  exit 0
fi

echo "check_format.sh: ${FMT} --dry-run over ${#FILES[@]} changed files"
"${FMT}" --dry-run --Werror "${FILES[@]}"
echo "check_format.sh: clean"
